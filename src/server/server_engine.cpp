#include "server/server_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "integrity/attestation.hpp"

namespace tc::server {

using net::MessageType;

namespace {
constexpr const char kDirectoryKey[] = "meta/streams";
constexpr const char kGrantDirectoryKey[] = "meta/grantdir";

std::string ConfigKey(uint64_t uuid) {
  return "meta/cfg/" + std::to_string(uuid);
}

/// Per-MessageType request count + latency, registered eagerly for every
/// frame type on first use so one lookup serves the whole process lifetime.
struct RequestMetrics {
  metrics::Counter& count;
  metrics::LatencyHistogram& latency;
};

RequestMetrics& MetricsFor(MessageType type) {
  static auto* table = [] {
    auto* t = new std::vector<RequestMetrics>;
    auto last = static_cast<size_t>(MessageType::kEventsInfo);
    t->reserve(last + 1);
    for (size_t i = 0; i <= last; ++i) {
      auto mt = static_cast<MessageType>(i);
      std::string labels =
          std::string("type=\"") + net::MessageTypeName(mt) + "\"";
      t->push_back({metrics::GetCounter("tc_server_requests_total", labels),
                    metrics::GetHistogram("tc_server_request_seconds",
                                          labels)});
    }
    return t;
  }();
  size_t idx = static_cast<size_t>(type);
  // Out-of-enum wire bytes share the kResponse slot ("response" is never a
  // request, so the slot is otherwise idle).
  if (idx >= table->size()) idx = 0;
  return (*table)[idx];
}

/// Stage-split histograms for the slow-op breakdown (decode/store/index/
/// crypto/sync on ingest, decode/index on queries).
enum class Stage { kDecode, kStore, kIndex, kCrypto, kSync };

metrics::LatencyHistogram& StageHist(Stage stage) {
  static metrics::LatencyHistogram* hists[] = {
      &metrics::GetHistogram("tc_server_stage_seconds", "stage=\"decode\""),
      &metrics::GetHistogram("tc_server_stage_seconds", "stage=\"store\""),
      &metrics::GetHistogram("tc_server_stage_seconds", "stage=\"index\""),
      &metrics::GetHistogram("tc_server_stage_seconds", "stage=\"crypto\""),
      &metrics::GetHistogram("tc_server_stage_seconds", "stage=\"sync\""),
  };
  return *hists[static_cast<size_t>(stage)];
}
}  // namespace

ServerEngine::ServerEngine(std::shared_ptr<store::KvStore> kv,
                           ServerOptions options)
    : kv_(std::move(kv)), options_(options) {
  // The engine has not escaped the constructor yet; the locks are
  // uncontended but keep recovery under the same capabilities as every
  // other registry access.
  {
    WriterMutexLock lock(streams_mu_);
    RecoverStreams();
  }
  {
    MutexLock lock(keystore_mu_);
    RecoverGrantDirectory();
  }
}

void ServerEngine::RecoverStreams() {
  auto dir = kv_->Get(kDirectoryKey);
  if (!dir.ok()) return;  // fresh store (or volatile one): nothing to do
  BinaryReader r(*dir);
  auto count = r.GetVar();
  if (!count.ok()) return;
  for (uint64_t i = 0; i < *count; ++i) {
    auto uuid = r.GetU64();
    if (!uuid.ok()) return;
    auto cfg_blob = kv_->Get(ConfigKey(*uuid));
    if (!cfg_blob.ok()) continue;
    BinaryReader cfg_reader(*cfg_blob);
    auto config = net::StreamConfig::Decode(cfg_reader);
    if (!config.ok()) continue;
    auto stream = OpenStream(*uuid, *config, /*recover=*/true);
    if (!stream.ok()) {
      TC_LOG_WARN << "recovery: skipping stream " << *uuid << ": "
                  << stream.status().ToString();
      continue;
    }
    streams_.emplace(*uuid, std::move(*stream));
  }
}

Result<std::shared_ptr<ServerEngine::Stream>> ServerEngine::OpenStream(
    uint64_t uuid, const net::StreamConfig& config, bool recover) {
  TC_ASSIGN_OR_RETURN(auto cipher, MakeAddCipher(config));
  auto tree = std::make_unique<index::AggTree>(
      kv_, "idx/" + std::to_string(uuid), cipher,
      index::AggTreeOptions{config.fanout, options_.index_cache_bytes});
  if (recover) {
    TC_RETURN_IF_ERROR(tree->Recover());
  }
  auto stream = std::make_shared<Stream>(
      config, ChunkClock(config.t0, config.delta_ms), cipher,
      std::move(tree));
  if (recover && stream->witnesses) {
    // Rebuild the witness tree from the stored ciphertexts — the witnesses
    // hash exactly what the store holds, so this is a pure recomputation.
    // The stream has not escaped this function yet, so its lock is
    // uncontended; taking it keeps the rebuild under mu's capability.
    WriterMutexLock stream_lock(stream->mu);
    uint64_t n = stream->tree->num_chunks();
    for (uint64_t i = 0; i < n; ++i) {
      TC_ASSIGN_OR_RETURN(Bytes digest, stream->tree->LeafDigest(i));
      Bytes payload;
      auto stored = kv_->Get(ChunkKey(uuid, i));
      if (stored.ok()) payload = std::move(*stored);
      stream->witnesses->Append(
          integrity::ChunkWitness(uuid, i, digest, payload));
    }
  }
  return stream;
}

Status ServerEngine::StoreDirectoryLocked() {
  BinaryWriter w;
  w.PutVar(streams_.size());
  for (const auto& [uuid, stream] : streams_) w.PutU64(uuid);
  return kv_->Put(kDirectoryKey, w.data());
}

Status ServerEngine::StoreGrantDirectoryLocked() {
  BinaryWriter w;
  w.PutVar(principal_grants_.size());
  for (const auto& [principal, grants] : principal_grants_) {
    w.PutString(principal);
    w.PutVar(grants.size());
    for (auto [uuid, grant_id] : grants) {
      w.PutU64(uuid);
      w.PutU64(grant_id);
    }
  }
  return kv_->Put(kGrantDirectoryKey, w.data());
}

void ServerEngine::RecoverGrantDirectory() {
  auto blob = kv_->Get(kGrantDirectoryKey);
  if (!blob.ok()) return;
  BinaryReader r(*blob);
  auto principals = r.GetVar();
  if (!principals.ok()) return;
  for (uint64_t p = 0; p < *principals; ++p) {
    auto principal = r.GetString();
    auto count = r.GetVar();
    if (!principal.ok() || !count.ok()) return;
    auto& list = principal_grants_[*principal];
    for (uint64_t g = 0; g < *count; ++g) {
      auto uuid = r.GetU64();
      auto grant_id = r.GetU64();
      if (!uuid.ok() || !grant_id.ok()) return;
      list.emplace_back(*uuid, *grant_id);
    }
  }
}

Status ServerEngine::Refresh() {
  // Decode the store's current stream directory. Only NotFound means "no
  // streams"; a transient store error must fail the refresh, not be
  // mistaken for an empty directory and tear down every serving stream.
  std::set<uint64_t> live;
  auto dir = kv_->Get(kDirectoryKey);
  if (!dir.ok() && dir.status().code() != StatusCode::kNotFound) {
    return dir.status();
  }
  if (dir.ok()) {
    BinaryReader r(*dir);
    TC_ASSIGN_OR_RETURN(uint64_t count, r.GetVar());
    for (uint64_t i = 0; i < count; ++i) {
      TC_ASSIGN_OR_RETURN(uint64_t uuid, r.GetU64());
      live.insert(uuid);
    }
  }

  // Diff it against the in-memory registry.
  std::vector<std::pair<uint64_t, std::shared_ptr<Stream>>> existing;
  {
    WriterMutexLock lock(streams_mu_);
    for (auto it = streams_.begin(); it != streams_.end();) {
      if (live.contains(it->first)) {
        existing.emplace_back(it->first, it->second);
        ++it;
      } else {
        it = streams_.erase(it);  // deleted on the primary
      }
    }
    for (uint64_t uuid : live) {
      if (streams_.contains(uuid)) continue;
      auto cfg_blob = kv_->Get(ConfigKey(uuid));
      if (!cfg_blob.ok()) continue;  // directory shipped before the config
      BinaryReader cfg_reader(*cfg_blob);
      auto config = net::StreamConfig::Decode(cfg_reader);
      if (!config.ok()) continue;
      auto stream = OpenStream(uuid, *config, /*recover=*/true);
      if (!stream.ok()) {
        TC_LOG_WARN << "refresh: skipping stream " << uuid << ": "
                    << stream.status().ToString();
        continue;
      }
      streams_.emplace(uuid, std::move(*stream));
    }
  }

  // Re-sync streams that already had handles: new appends moved their
  // index position and (for integrity streams) grew the witness history.
  for (auto& [uuid, stream] : existing) {
    WriterMutexLock stream_lock(stream->mu);
    TC_RETURN_IF_ERROR(stream->tree->Refresh());
    if (stream->witnesses) {
      uint64_t n = stream->tree->num_chunks();
      for (uint64_t i = stream->witnesses->size(); i < n; ++i) {
        TC_ASSIGN_OR_RETURN(Bytes digest, stream->tree->LeafDigest(i));
        Bytes payload;
        if (auto stored = kv_->Get(ChunkKey(uuid, i)); stored.ok()) {
          payload = std::move(*stored);
        }
        stream->witnesses->Append(
            integrity::ChunkWitness(uuid, i, digest, payload));
      }
    }
  }
  return Status::Ok();
}

Result<Bytes> ServerEngine::Handle(MessageType type, BytesView body) {
  RequestMetrics& request_metrics = MetricsFor(type);
  request_metrics.count.Inc();
  // The span records total latency per type into the ring (for kTraceInfo
  // stitching) tagged with this engine's shard and, when the slow-op
  // threshold is armed, logs the stage breakdown with the wire trace id.
  metrics::TraceSpan span(net::MessageTypeName(type),
                          &request_metrics.latency, options_.shard_id,
                          static_cast<uint8_t>(type));
  switch (type) {
    case MessageType::kCreateStream: return CreateStream(body);
    case MessageType::kDeleteStream: return DeleteStream(body);
    case MessageType::kInsertChunk: return InsertChunk(body);
    case MessageType::kInsertChunkBatch: return InsertChunkBatch(body);
    case MessageType::kClusterInfo: return ClusterInfo();
    case MessageType::kGetRange: return GetRange(body);
    case MessageType::kGetStatRange: return GetStatRange(body);
    case MessageType::kGetStatSeries: return GetStatSeries(body);
    case MessageType::kMultiStatRange: return MultiStatRange(body);
    case MessageType::kRollupStream: return RollupStream(body);
    case MessageType::kDeleteRange: return DeleteRange(body);
    case MessageType::kGetStreamInfo: return GetStreamInfo(body);
    case MessageType::kPutGrant: return PutGrant(body);
    case MessageType::kFetchGrants: return FetchGrants(body);
    case MessageType::kRevokeGrant: return RevokeGrant(body);
    case MessageType::kPutEnvelopes: return PutEnvelopes(body);
    case MessageType::kGetEnvelopes: return GetEnvelopes(body);
    case MessageType::kPutAttestation: return PutAttestation(body);
    case MessageType::kGetAttestation: return GetAttestation(body);
    case MessageType::kGetChunkWitnessed: return GetChunkWitnessed(body);
    case MessageType::kMetricsInfo: return MetricsInfo();
    case MessageType::kTraceInfo: {
      TC_ASSIGN_OR_RETURN(auto req, net::TraceInfoRequest::Decode(body));
      return net::TraceInfoResponse::FromRing(req).Encode();
    }
    case MessageType::kEventsInfo: {
      TC_ASSIGN_OR_RETURN(auto req, net::EventsInfoRequest::Decode(body));
      return net::EventsInfoResponse::FromJournal(req).Encode();
    }
    case MessageType::kPing: return Bytes{};
    case MessageType::kResponse: break;
    // Replication frames target a follower's ReplicaApplier endpoint (and
    // kReplicaHello a PrimaryCoordinator); a serving engine is never the
    // right recipient.
    case MessageType::kReplicaOps: break;
    case MessageType::kReplicaHello: break;
    case MessageType::kReplicaSnapshotBegin: break;
    case MessageType::kReplicaSnapshotChunk: break;
    case MessageType::kReplicaSnapshotEnd: break;
    case MessageType::kReplicaHeartbeat: break;
  }
  return InvalidArgument("unknown message type");
}

size_t ServerEngine::NumStreams() const {
  ReaderMutexLock lock(streams_mu_);
  return streams_.size();
}

uint64_t ServerEngine::TotalIndexBytes() const {
  ReaderMutexLock lock(streams_mu_);
  uint64_t total = 0;
  for (const auto& [uuid, stream] : streams_) {
    ReaderMutexLock stream_lock(stream->mu);
    total += stream->tree->IndexBytes();
  }
  return total;
}

Result<const index::AggTree*> ServerEngine::GetIndexForTesting(
    uint64_t uuid) const {
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(uuid));
  return stream->tree.get();
}

Result<std::shared_ptr<const index::DigestCipher>> ServerEngine::MakeAddCipher(
    const net::StreamConfig& config) {
  size_t fields = config.schema.num_fields();
  if (fields == 0) return InvalidArgument("stream schema has no fields");
  switch (config.cipher) {
    case net::CipherKind::kPlain:
    case net::CipherKind::kHeac:
      // HEAC addition is plaintext-ring addition over opaque words: the
      // server runs the identical code for both (that is the design).
      return std::shared_ptr<const index::DigestCipher>(
          index::MakePlainCipher(fields));
    case net::CipherKind::kPaillier: {
      TC_ASSIGN_OR_RETURN(auto paillier,
                          crypto::Paillier::FromPublicKey(config.cipher_public));
      return std::shared_ptr<const index::DigestCipher>(
          index::MakePaillierCipher(
              fields, std::shared_ptr<const crypto::Paillier>(
                          std::move(paillier))));
    }
    case net::CipherKind::kEcElGamal: {
      TC_ASSIGN_OR_RETURN(auto eg,
                          crypto::EcElGamal::FromPublicKey(config.cipher_public));
      return std::shared_ptr<const index::DigestCipher>(
          index::MakeEcElGamalCipher(
              fields,
              std::shared_ptr<const crypto::EcElGamal>(std::move(eg))));
    }
  }
  return InvalidArgument("unknown cipher kind");
}

Result<std::shared_ptr<ServerEngine::Stream>> ServerEngine::FindStream(
    uint64_t uuid) const {
  ReaderMutexLock lock(streams_mu_);
  auto it = streams_.find(uuid);
  if (it == streams_.end()) {
    return NotFound("stream " + std::to_string(uuid) + " does not exist");
  }
  return it->second;
}

Result<std::pair<uint64_t, uint64_t>> ServerEngine::ResolveRange(
    const Stream& stream, const TimeRange& range) {
  TC_ASSIGN_OR_RETURN(auto idx_range, stream.clock.IndexRange(range));
  auto [first, last] = idx_range;
  uint64_t ingested = stream.tree->num_chunks();
  if (first >= ingested) return OutOfRange("range beyond ingested data");
  last = std::min(last, ingested);
  return std::make_pair(first, last);
}

std::string ServerEngine::ChunkKey(uint64_t uuid, uint64_t chunk_index) const {
  return "chunk/" + std::to_string(uuid) + "/" + std::to_string(chunk_index);
}

std::string ServerEngine::GrantKey(const std::string& principal,
                                   uint64_t uuid, uint64_t grant_id) const {
  return "grant/" + principal + "/" + std::to_string(uuid) + "/" +
         std::to_string(grant_id);
}

std::string ServerEngine::EnvelopeKey(uint64_t uuid, uint64_t resolution,
                                      uint64_t index) const {
  return "env/" + std::to_string(uuid) + "/" + std::to_string(resolution) +
         "/" + std::to_string(index);
}

Result<Bytes> ServerEngine::CreateStream(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::CreateStreamRequest::Decode(body));
  if (req.config.delta_ms <= 0) {
    return InvalidArgument("chunk interval must be positive");
  }

  WriterMutexLock lock(streams_mu_);
  if (streams_.contains(req.uuid)) {
    return AlreadyExists("stream " + std::to_string(req.uuid));
  }
  TC_ASSIGN_OR_RETURN(auto stream,
                      OpenStream(req.uuid, req.config, /*recover=*/false));
  streams_.emplace(req.uuid, std::move(stream));

  // Persist the config + directory so a restarted engine recovers the
  // stream from a durable store.
  BinaryWriter cfg;
  req.config.Encode(cfg);
  TC_RETURN_IF_ERROR(kv_->Put(ConfigKey(req.uuid), cfg.data()));
  TC_RETURN_IF_ERROR(StoreDirectoryLocked());
  return Bytes{};
}

Result<Bytes> ServerEngine::DeleteStream(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::DeleteStreamRequest::Decode(body));
  // Unpublish the stream first, then release streams_mu_ before waiting on
  // per-stream state: blocking on stream->mu (or running the chunk delete
  // loop) under the global lock would stall every request on the server
  // behind one slow stream operation.
  std::shared_ptr<Stream> stream;
  {
    WriterMutexLock lock(streams_mu_);
    auto it = streams_.find(req.uuid);
    if (it == streams_.end()) return NotFound("stream does not exist");
    stream = it->second;
    streams_.erase(it);
    // tc_analyze:allow(status-discard) best-effort cleanup; the directory rewrite below is the commit point
    (void)kv_->Delete(ConfigKey(req.uuid));
    TC_RETURN_IF_ERROR(StoreDirectoryLocked());
  }

  // Wait out any in-flight ingest on this stream, then drop chunk payloads;
  // index nodes stay orphaned in the KV (a real deployment would GC them;
  // compaction handles it for the log store).
  WriterMutexLock stream_lock(stream->mu);
  uint64_t n = stream->tree->num_chunks();
  for (uint64_t i = 0; i < n; ++i) {
    // tc_analyze:allow(status-discard) best-effort payload GC; an orphaned chunk is unreachable once unpublished
    (void)kv_->Delete(ChunkKey(req.uuid, i));
  }
  return Bytes{};
}

Result<Bytes> ServerEngine::InsertChunk(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::InsertChunkRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  metrics::TraceSpan::StageMark("decode", &StageHist(Stage::kDecode));

  {
    WriterMutexLock lock(stream->mu);
    // The append-only position check runs before any store write: a
    // rejected insert (duplicate or gapped index) must not clobber a
    // committed chunk's stored ciphertext.
    if (req.chunk_index != stream->tree->num_chunks()) {
      return FailedPrecondition(
          "append-only index: expected chunk " +
          std::to_string(stream->tree->num_chunks()) + ", got " +
          std::to_string(req.chunk_index));
    }
    // Payload before index append: any store state where the index shows
    // chunk n also holds n's payload. Replicas and crash recovery see
    // mutation prefixes, and the reverse order would let them serve an
    // index position whose payload never arrived. (A payload orphaned by
    // an append failure is overwritten on retry.)
    if (!req.payload.empty()) {
      TC_RETURN_IF_ERROR(
          kv_->Put(ChunkKey(req.uuid, req.chunk_index), req.payload));
    }
    metrics::TraceSpan::StageMark("store", &StageHist(Stage::kStore));
    TC_RETURN_IF_ERROR(stream->tree->Append(req.chunk_index, req.digest_blob));
    metrics::TraceSpan::StageMark("index", &StageHist(Stage::kIndex));
    if (stream->witnesses) {
      // Mirror the producer's witness so audit paths can be served. The
      // producer computes the same hash over the same ciphertext bytes; any
      // later divergence is exactly what verification catches.
      stream->witnesses->Append(integrity::ChunkWitness(
          req.uuid, req.chunk_index, req.digest_blob, req.payload));
      metrics::TraceSpan::StageMark("crypto", &StageHist(Stage::kCrypto));
    }
  }
  // Durability flush outside the stream lock: fsync under stream->mu would
  // stall every reader and the next insert behind the disk (tc_analyze B1).
  // The ack-after-flush contract is unchanged — we reply only after Sync —
  // and the group-committing Sync covers this insert's appends even when a
  // later insert slips in between unlock and flush.
  if (options_.sync_each_insert) {
    TC_RETURN_IF_ERROR(kv_->Sync());
    metrics::TraceSpan::StageMark("sync", &StageHist(Stage::kSync));
  }
  return Bytes{};
}

Result<Bytes> ServerEngine::InsertChunkBatch(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::InsertChunkBatchRequest::Decode(body));
  if (req.entries.empty()) return InvalidArgument("empty chunk batch");
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  metrics::TraceSpan::StageMark("decode", &StageHist(Stage::kDecode));

  // One lock acquisition, one (group-committed) store sync for the whole
  // batch — the amortization InsertChunkBatch exists for. The batch is not
  // atomic: on a mid-batch error the already-appended prefix stays (same
  // observable state as the equivalent InsertChunk sequence failing there).
  {
    WriterMutexLock lock(stream->mu);
    for (const auto& e : req.entries) {
      // Position check before the payload write — see InsertChunk.
      if (e.chunk_index != stream->tree->num_chunks()) {
        return FailedPrecondition(
            "append-only index: expected chunk " +
            std::to_string(stream->tree->num_chunks()) + ", got " +
            std::to_string(e.chunk_index));
      }
      // Payload before index append — see InsertChunk.
      if (!e.payload.empty()) {
        TC_RETURN_IF_ERROR(
            kv_->Put(ChunkKey(req.uuid, e.chunk_index), e.payload));
      }
      TC_RETURN_IF_ERROR(stream->tree->Append(e.chunk_index, e.digest_blob));
      if (stream->witnesses) {
        stream->witnesses->Append(integrity::ChunkWitness(
            req.uuid, e.chunk_index, e.digest_blob, e.payload));
      }
    }
    // The batch interleaves store puts and index appends; the loop reports
    // as one "index" stage (the split is visible on the InsertChunk path).
    metrics::TraceSpan::StageMark("index", &StageHist(Stage::kIndex));
  }
  // Flush outside the stream lock — see InsertChunk.
  if (options_.sync_each_insert) {
    TC_RETURN_IF_ERROR(kv_->Sync());
    metrics::TraceSpan::StageMark("sync", &StageHist(Stage::kSync));
  }
  return Bytes{};
}

net::ClusterInfoResponse::ShardInfo ServerEngine::ShardInfoSnapshot() const {
  // Publish the per-shard gauges and build the wire struct from the same
  // values: kClusterInfo and the Prometheus exposition can never disagree.
  net::ClusterInfoResponse::ShardInfo info;
  info.shard = options_.shard_id;
  info.num_streams = NumStreams();
  info.index_bytes = TotalIndexBytes();
  auto compaction = StoreCompaction();
  info.store_dead_bytes = compaction.dead_bytes;
  info.store_compactions = static_cast<uint32_t>(compaction.compactions);
  if constexpr (metrics::kEnabled) {
    char labels[32];
    std::snprintf(labels, sizeof(labels), "shard=\"%u\"", options_.shard_id);
    metrics::GetGauge("tc_cluster_streams", labels)
        .Set(static_cast<int64_t>(info.num_streams));
    metrics::GetGauge("tc_cluster_index_bytes", labels)
        .Set(static_cast<int64_t>(info.index_bytes));
    metrics::GetGauge("tc_store_dead_bytes", labels)
        .Set(static_cast<int64_t>(info.store_dead_bytes));
    metrics::GetGauge("tc_store_compactions", labels)
        .Set(static_cast<int64_t>(info.store_compactions));
  }
  return info;
}

Result<Bytes> ServerEngine::ClusterInfo() const {
  net::ClusterInfoResponse resp;
  resp.shards.push_back(ShardInfoSnapshot());
  return resp.Encode();
}

Result<Bytes> ServerEngine::MetricsInfo() const {
  // Gauges derived from engine state are refreshed on scrape, not on
  // mutation — the snapshot call doubles as the refresh.
  ShardInfoSnapshot();
  return net::MetricsInfoResponse::FromRegistry().Encode();
}

Result<Bytes> ServerEngine::GetRange(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::GetRangeRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  metrics::TraceSpan::StageMark("decode", &StageHist(Stage::kDecode));
  ReaderMutexLock stream_lock(stream->mu);
  TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*stream, req.range));

  net::GetRangeResponse resp;
  for (uint64_t i = range.first; i < range.second; ++i) {
    auto payload = kv_->Get(ChunkKey(req.uuid, i));
    if (!payload.ok()) continue;  // decayed or digest-only chunk
    resp.chunks.push_back({i, std::move(*payload)});
  }
  metrics::TraceSpan::StageMark("store", &StageHist(Stage::kStore));
  return resp.Encode();
}

Result<Bytes> ServerEngine::GetStatRange(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::StatRangeRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  metrics::TraceSpan::StageMark("decode", &StageHist(Stage::kDecode));
  ReaderMutexLock stream_lock(stream->mu);
  TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*stream, req.range));

  TC_ASSIGN_OR_RETURN(Bytes blob,
                      stream->tree->Query(range.first, range.second));
  metrics::TraceSpan::StageMark("index", &StageHist(Stage::kIndex));
  net::StatRangeResponse resp;
  resp.first_chunk = range.first;
  resp.last_chunk = range.second;
  resp.aggregate_blob = std::move(blob);
  return resp.Encode();
}

Result<Bytes> ServerEngine::GetStatSeries(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::StatSeriesRequest::Decode(body));
  if (req.granularity_chunks == 0) {
    return InvalidArgument("granularity must be positive");
  }
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  ReaderMutexLock stream_lock(stream->mu);
  TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*stream, req.range));

  net::StatSeriesResponse resp;
  resp.first_chunk = range.first;
  resp.last_chunk = range.second;
  resp.granularity_chunks = req.granularity_chunks;
  for (uint64_t w = range.first; w < range.second;
       w += req.granularity_chunks) {
    uint64_t end = std::min(w + req.granularity_chunks, range.second);
    TC_ASSIGN_OR_RETURN(Bytes blob, stream->tree->Query(w, end));
    resp.aggregates.push_back(std::move(blob));
  }
  return resp.Encode();
}

Result<Bytes> ServerEngine::MultiStatRange(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::MultiStatRangeRequest::Decode(body));
  if (req.uuids.empty()) return InvalidArgument("no streams given");

  // Inter-stream aggregation (§4.3): all streams must share digest layout
  // and cipher kind; the chunk range is resolved per-stream (streams may
  // differ in Δ but the time window is common).
  Bytes acc;
  std::shared_ptr<const index::DigestCipher> cipher;
  uint64_t first = 0, last = 0;
  for (size_t s = 0; s < req.uuids.size(); ++s) {
    TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuids[s]));
    ReaderMutexLock stream_lock(stream->mu);
    TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*stream, req.range));
    TC_ASSIGN_OR_RETURN(Bytes blob,
                        stream->tree->Query(range.first, range.second));
    if (s == 0) {
      acc = std::move(blob);
      cipher = stream->add_cipher;
      first = range.first;
      last = range.second;
    } else {
      if (stream->add_cipher->blob_size() != cipher->blob_size()) {
        return FailedPrecondition(
            "inter-stream query requires matching digest layouts");
      }
      TC_RETURN_IF_ERROR(cipher->Add(std::span<uint8_t>(acc), blob));
    }
  }
  net::StatRangeResponse resp;
  resp.first_chunk = first;
  resp.last_chunk = last;
  resp.aggregate_blob = std::move(acc);
  return resp.Encode();
}

Result<Bytes> ServerEngine::RollupStream(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::RollupStreamRequest::Decode(body));
  if (req.granularity_chunks == 0) {
    return InvalidArgument("rollup granularity must be positive");
  }
  TC_ASSIGN_OR_RETURN(auto source, FindStream(req.source_uuid));

  // Resolve the segment ({0,0} = whole stream so far). The shared lock is
  // scoped: CreateStream below takes streams_mu_, and holding source->mu
  // across it would invert the streams_mu_ -> stream->mu lock order.
  uint64_t first = 0, last = 0;
  {
    ReaderMutexLock source_lock(source->mu);
    last = source->tree->num_chunks();
    if (!(req.range.start == 0 && req.range.end == 0)) {
      TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*source, req.range));
      first = range.first;
      last = range.second;
    }
  }
  // Align to whole rollup windows.
  first -= first % req.granularity_chunks;
  last -= last % req.granularity_chunks;
  if (first >= last) return InvalidArgument("rollup segment is empty");

  // Create the derived stream: same schema/cipher, Δ scaled up. No witness
  // tree: its digests are server-computed aggregates, not producer-sealed
  // ciphertexts, so there is no owner attestation they could prove against.
  net::StreamConfig derived = source->config;
  derived.integrity = false;
  derived.name += "/rollup" + std::to_string(req.granularity_chunks);
  derived.delta_ms =
      source->config.delta_ms * static_cast<int64_t>(req.granularity_chunks);
  derived.t0 = source->clock.RangeOfChunk(first).start;
  net::CreateStreamRequest create{req.target_uuid, derived};
  TC_RETURN_IF_ERROR(CreateStream(create.Encode()).status());

  TC_ASSIGN_OR_RETURN(auto target, FindStream(req.target_uuid));
  // source is read under a shared lock while target is written; the target
  // stream was just created, so no opposite-direction rollup can hold
  // target shared while waiting for source exclusive.
  ReaderMutexLock source_lock(source->mu);
  WriterMutexLock lock(target->mu);
  uint64_t out_index = 0;
  for (uint64_t w = first; w < last; w += req.granularity_chunks) {
    TC_ASSIGN_OR_RETURN(Bytes blob,
                        source->tree->Query(w, w + req.granularity_chunks));
    TC_RETURN_IF_ERROR(target->tree->Append(out_index++, blob));
  }
  // Report the aligned source chunk range so the owner can map derived
  // chunk indices back to source keystream positions.
  BinaryWriter w;
  w.PutU64(first);
  w.PutU64(last);
  return std::move(w).Take();
}

Result<Bytes> ServerEngine::DeleteRange(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::DeleteRangeRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));

  WriterMutexLock lock(stream->mu);
  TC_ASSIGN_OR_RETURN(auto range, ResolveRange(*stream, req.range));
  // Drop raw payloads; per-chunk digests are retained (Table 1 row 7:
  // "Delete specified segment of the stream, while maintaining per-chunk
  // digest").
  for (uint64_t i = range.first; i < range.second; ++i) {
    Status s = kv_->Delete(ChunkKey(req.uuid, i));
    if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
  }
  return Bytes{};
}

Result<Bytes> ServerEngine::GetStreamInfo(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::DeleteStreamRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  ReaderMutexLock stream_lock(stream->mu);
  net::StreamInfoResponse resp;
  resp.config = stream->config;
  resp.num_chunks = stream->tree->num_chunks();
  return resp.Encode();
}

Result<Bytes> ServerEngine::PutGrant(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::PutGrantRequest::Decode(body));
  TC_RETURN_IF_ERROR(kv_->Put(
      GrantKey(req.principal_id, req.uuid, req.grant_id), req.sealed_grant));
  MutexLock lock(keystore_mu_);
  auto& list = principal_grants_[req.principal_id];
  auto entry = std::make_pair(req.uuid, req.grant_id);
  if (std::find(list.begin(), list.end(), entry) == list.end()) {
    list.push_back(entry);
  }
  TC_RETURN_IF_ERROR(StoreGrantDirectoryLocked());
  return Bytes{};
}

Result<Bytes> ServerEngine::FetchGrants(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::FetchGrantsRequest::Decode(body));
  net::FetchGrantsResponse resp;
  MutexLock lock(keystore_mu_);
  auto it = principal_grants_.find(req.principal_id);
  if (it != principal_grants_.end()) {
    for (auto [uuid, grant_id] : it->second) {
      auto sealed = kv_->Get(GrantKey(req.principal_id, uuid, grant_id));
      if (sealed.status().code() == StatusCode::kNotFound) continue;  // revoked
      TC_RETURN_IF_ERROR(sealed.status());  // store outage: surface, not hide
      resp.grants.push_back({uuid, grant_id, std::move(*sealed)});
    }
  }
  return resp.Encode();
}

Result<Bytes> ServerEngine::PutAttestation(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::PutAttestationRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  if (!stream->witnesses) {
    return FailedPrecondition("stream has no integrity witness tree");
  }
  // The server need not (and cannot meaningfully) verify the signature —
  // it just stores the latest attestation for consumers to pick up.
  return kv_->Put("att/" + std::to_string(req.uuid), req.attestation)
             .ok()
         ? Result<Bytes>(Bytes{})
         : Result<Bytes>(Unavailable("attestation store failed"));
}

Result<Bytes> ServerEngine::GetAttestation(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::GetAttestationRequest::Decode(body));
  return kv_->Get("att/" + std::to_string(req.uuid));
}

Result<Bytes> ServerEngine::GetChunkWitnessed(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::GetChunkWitnessedRequest::Decode(body));
  TC_ASSIGN_OR_RETURN(auto stream, FindStream(req.uuid));
  if (!stream->witnesses) {
    return FailedPrecondition("stream has no integrity witness tree");
  }
  if (req.first_chunk >= req.last_chunk) {
    return InvalidArgument("empty chunk range");
  }
  // at_size == 0: proof-less bulk read (a producer rebuilding its witness
  // history after restart; it recomputes and cross-checks the hashes
  // itself). Otherwise paths are proven against the requested prefix.
  bool with_proofs = req.at_size != 0;
  if (with_proofs && req.last_chunk > req.at_size) {
    return OutOfRange("chunk range exceeds attested prefix");
  }
  ReaderMutexLock stream_lock(stream->mu);
  if (!with_proofs && req.last_chunk > stream->tree->num_chunks()) {
    return OutOfRange("chunk range exceeds ingested chunks");
  }

  net::GetChunkWitnessedResponse resp;
  for (uint64_t i = req.first_chunk; i < req.last_chunk; ++i) {
    net::GetChunkWitnessedResponse::Entry entry;
    entry.chunk_index = i;
    TC_ASSIGN_OR_RETURN(entry.digest_blob, stream->tree->LeafDigest(i));
    auto payload = kv_->Get(ChunkKey(req.uuid, i));
    if (payload.ok()) entry.payload = std::move(*payload);
    if (with_proofs) {
      TC_ASSIGN_OR_RETURN(auto path,
                          stream->witnesses->Proof(i, req.at_size));
      BinaryWriter w;
      integrity::EncodeAuditPath(w, path);
      entry.proof = std::move(w).Take();
    }
    resp.entries.push_back(std::move(entry));
  }
  return resp.Encode();
}

Result<Bytes> ServerEngine::RevokeGrant(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::RevokeGrantRequest::Decode(body));
  MutexLock lock(keystore_mu_);
  auto it = principal_grants_.find(req.principal_id);
  if (it == principal_grants_.end()) return Bytes{};
  auto& list = it->second;
  for (auto entry = list.begin(); entry != list.end();) {
    bool match = entry->first == req.uuid &&
                 (req.grant_id == 0 || entry->second == req.grant_id);
    if (match) {
      // tc_analyze:allow(status-discard) best-effort cleanup; the grant directory rewrite below is the commit point
      (void)kv_->Delete(GrantKey(req.principal_id, entry->first,
                                 entry->second));
      entry = list.erase(entry);
    } else {
      ++entry;
    }
  }
  TC_RETURN_IF_ERROR(StoreGrantDirectoryLocked());
  return Bytes{};
}

Result<Bytes> ServerEngine::PutEnvelopes(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::PutEnvelopesRequest::Decode(body));
  for (size_t i = 0; i < req.envelopes.size(); ++i) {
    TC_RETURN_IF_ERROR(kv_->Put(
        EnvelopeKey(req.uuid, req.resolution_chunks, req.first_index + i),
        req.envelopes[i]));
  }
  return Bytes{};
}

Result<Bytes> ServerEngine::GetEnvelopes(BytesView body) const {
  TC_ASSIGN_OR_RETURN(auto req, net::GetEnvelopesRequest::Decode(body));
  if (req.last_index < req.first_index) {
    return InvalidArgument("bad envelope range");
  }
  net::GetEnvelopesResponse resp;
  resp.first_index = req.first_index;
  for (uint64_t i = req.first_index; i <= req.last_index; ++i) {
    TC_ASSIGN_OR_RETURN(
        Bytes e, kv_->Get(EnvelopeKey(req.uuid, req.resolution_chunks, i)));
    resp.envelopes.push_back(std::move(e));
  }
  return resp.Encode();
}

}  // namespace tc::server
