#include "integrity/merkle.hpp"

#include <bit>

namespace tc::integrity {

namespace {

/// Largest power of two strictly less than n (n >= 2).
uint64_t SplitPoint(uint64_t n) {
  return uint64_t{1} << (63 - std::countl_zero(n - 1));
}

BytesView HashView(const Hash& h) { return BytesView(h.data(), h.size()); }

}  // namespace

Hash LeafHash(BytesView data) {
  const uint8_t prefix = 0x00;
  return crypto::Sha256Concat(BytesView(&prefix, 1), data);
}

Hash NodeHash(const Hash& left, const Hash& right) {
  Bytes buf;
  buf.reserve(1 + 2 * sizeof(Hash));
  buf.push_back(0x01);
  Append(buf, HashView(left));
  Append(buf, HashView(right));
  return crypto::Sha256(buf);
}

void MerkleTree::Append(const Hash& leaf_hash) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf_hash);
  // Cascade: whenever a level gains an even number of entries, the parent
  // over the last pair is complete — push it one level up.
  for (size_t l = 0; levels_[l].size() % 2 == 0; ++l) {
    if (l + 1 == levels_.size()) levels_.emplace_back();
    const auto& level = levels_[l];
    levels_[l + 1].push_back(
        NodeHash(level[level.size() - 2], level[level.size() - 1]));
  }
}

Hash MerkleTree::Root() const { return SubtreeRoot(0, size()); }

Result<Hash> MerkleTree::RootAt(uint64_t n) const {
  if (n > size()) {
    return OutOfRange("attested size exceeds tree size");
  }
  return SubtreeRoot(0, n);
}

Result<Hash> MerkleTree::Leaf(uint64_t index) const {
  if (index >= size()) return OutOfRange("leaf index out of range");
  return levels_[0][index];
}

Hash MerkleTree::SubtreeRoot(uint64_t first, uint64_t last) const {
  uint64_t n = last - first;
  if (n == 0) return crypto::Sha256({});  // empty-tree convention
  if (n == 1) return levels_[0][first];
  // Complete aligned subtrees were cascaded at append time: O(1) lookup.
  // The RFC 6962 recursion only ever produces aligned power-of-two left
  // children, so at most the ragged right spine recurses — O(log n) total.
  if (std::has_single_bit(n) && first % n == 0) {
    uint32_t level = static_cast<uint32_t>(std::countr_zero(n));
    return levels_[level][first >> level];
  }
  uint64_t k = SplitPoint(n);
  return NodeHash(SubtreeRoot(first, first + k), SubtreeRoot(first + k, last));
}

Result<AuditPath> MerkleTree::Proof(uint64_t index, uint64_t n) const {
  if (n > size()) {
    return OutOfRange("proof size exceeds tree size");
  }
  if (index >= n) return OutOfRange("leaf index outside attested prefix");
  AuditPath path;
  TC_RETURN_IF_ERROR(BuildProof(index, 0, n, path));
  return path;
}

Status MerkleTree::BuildProof(uint64_t index, uint64_t first, uint64_t last,
                              AuditPath& path) const {
  uint64_t n = last - first;
  if (n == 1) return Status::Ok();  // reached the leaf
  uint64_t k = SplitPoint(n);
  if (index < first + k) {
    // Leaf in the left subtree: right sibling joins the path above us.
    TC_RETURN_IF_ERROR(BuildProof(index, first, first + k, path));
    path.siblings.push_back(SubtreeRoot(first + k, last));
    path.left_sibling.push_back(false);
  } else {
    TC_RETURN_IF_ERROR(BuildProof(index, first + k, last, path));
    path.siblings.push_back(SubtreeRoot(first, first + k));
    path.left_sibling.push_back(true);
  }
  return Status::Ok();
}

Status VerifyAuditPath(const Hash& expected_root, const Hash& leaf_hash,
                       const AuditPath& path) {
  if (path.siblings.size() != path.left_sibling.size()) {
    return InvalidArgument("malformed audit path");
  }
  Hash running = leaf_hash;
  for (size_t i = 0; i < path.siblings.size(); ++i) {
    running = path.left_sibling[i] ? NodeHash(path.siblings[i], running)
                                   : NodeHash(running, path.siblings[i]);
  }
  if (running != expected_root) {
    return PermissionDenied("audit path does not match attested root");
  }
  return Status::Ok();
}

}  // namespace tc::integrity
