// Append-only Merkle tree over chunk witness hashes (the integrity
// extension's core data structure). Follows the Certificate-Transparency
// tree shape (RFC 6962): defined for any leaf count, stable under append,
// with logarithmic audit paths — the right fit for an in-order append-only
// chunk stream (§4.5).
//
// Domain separation prevents leaf/node confusion attacks:
//   leaf hash  = SHA-256(0x00 || data)
//   inner hash = SHA-256(0x01 || left || right)
// The tree over n leaves splits at k, the largest power of two < n:
//   MTH(L[0..n)) = H(0x01 || MTH(L[0..k)) || MTH(L[k..n)))
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "crypto/sha256.hpp"

namespace tc::integrity {

using Hash = crypto::Sha256Digest;

/// Hash a leaf's content (domain-separated).
Hash LeafHash(BytesView data);

/// Hash two child subtree roots (domain-separated).
Hash NodeHash(const Hash& left, const Hash& right);

/// An audit path: sibling hashes from the leaf's level up to the root.
/// `left_sibling[i]` records whether proof step i's hash sits to the LEFT
/// of the running hash (order matters — SHA-256 is not commutative).
struct AuditPath {
  std::vector<Hash> siblings;
  std::vector<bool> left_sibling;

  size_t size() const { return siblings.size(); }
};

/// In-memory append-only Merkle tree. Leaves arrive in order; Root() and
/// Proof() answer for the current size. Storage is ~2n hashes: every
/// complete power-of-two-aligned subtree hash is cascaded into a per-level
/// cache at append time, making Proof()/RootAt() logarithmic instead of
/// rescanning the leaves (the server serves thousands of audit paths per
/// second on large streams).
class MerkleTree {
 public:
  MerkleTree() = default;

  /// Append a pre-hashed leaf.
  void Append(const Hash& leaf_hash);

  /// Convenience: hash + append raw leaf content.
  void AppendLeaf(BytesView data) { Append(LeafHash(data)); }

  uint64_t size() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }

  /// Root over all current leaves. Empty tree: SHA-256 of the empty string
  /// (the RFC 6962 convention).
  Hash Root() const;

  /// Root over the first `n` leaves (n <= size) — lets a verifier check an
  /// attestation that is older than the server's current tree.
  Result<Hash> RootAt(uint64_t n) const;

  /// Audit path proving leaf `index` is in the tree over the first `n`
  /// leaves. Verify with VerifyAuditPath.
  Result<AuditPath> Proof(uint64_t index, uint64_t n) const;

  /// The stored hash of leaf `index`.
  Result<Hash> Leaf(uint64_t index) const;

 private:
  Hash SubtreeRoot(uint64_t first, uint64_t last) const;  // [first, last)
  Status BuildProof(uint64_t index, uint64_t first, uint64_t last,
                    AuditPath& path) const;

  // levels_[l][i] = hash over leaves [i*2^l, (i+1)*2^l) for every COMPLETE
  // aligned subtree; levels_[0] is the leaves themselves.
  std::vector<std::vector<Hash>> levels_;
};

/// Recompute the root from a leaf hash and its audit path; OK iff it equals
/// `expected_root`. This is the consumer-side verification primitive.
Status VerifyAuditPath(const Hash& expected_root, const Hash& leaf_hash,
                       const AuditPath& path);

}  // namespace tc::integrity
