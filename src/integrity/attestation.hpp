// Stream attestations: the owner-signed anchor that upgrades TimeCrypt from
// confidentiality-only to verified reads. §3.3 scopes integrity out of the
// core system and points at Verena-style extensions; this module is that
// extension, built from the repo's own primitives (Merkle tree + Ed25519).
//
// Protocol:
//  - The producer hashes every sealed chunk into a witness leaf
//    (uuid, chunk index, encrypted digest, sealed payload — all ciphertext,
//    so witnesses leak nothing beyond what the server already stores).
//  - The untrusted server maintains the same Merkle tree over the witnesses
//    it stores and serves audit paths (it *can* — witnesses are public).
//  - The owner periodically signs (uuid, size, root) and publishes the
//    attestation to the server's key store.
//  - A consumer fetches chunk + attestation + audit path and accepts the
//    chunk only if the path verifies against the signed root. A server
//    that tampers with, reorders, or truncates data within the attested
//    prefix can no longer answer with a valid path.
#pragma once

#include <cstdint>

#include "common/io.hpp"
#include "crypto/ed25519.hpp"
#include "integrity/merkle.hpp"

namespace tc::integrity {

/// Witness leaf content for one sealed chunk. Both producer and server
/// compute this over identical bytes.
Hash ChunkWitness(uint64_t uuid, uint64_t chunk_index, BytesView digest_blob,
                  BytesView payload);

/// An owner-signed statement: "stream `uuid` has `size` chunks and witness
/// tree root `root`". Signed over the canonical encoding of those fields.
struct Attestation {
  uint64_t uuid = 0;
  uint64_t size = 0;  // number of attested chunks
  Hash root{};
  Bytes signature;  // Ed25519 over SignedBytes()

  /// The exact byte string the signature covers.
  Bytes SignedBytes() const;

  Bytes Encode() const;
  static Result<Attestation> Decode(BytesView in);

  /// Check the signature against the owner's public signing key.
  Status Verify(BytesView owner_public) const;
};

/// Producer-side attestor: mirrors the witness tree incrementally as chunks
/// are sealed and signs the current root on demand.
class StreamAttestor {
 public:
  StreamAttestor(uint64_t uuid, crypto::SigningKeyPair keys)
      : uuid_(uuid), keys_(std::move(keys)) {}

  /// Record chunk `index`'s witness. Chunks must arrive in order from 0.
  Status Add(uint64_t index, BytesView digest_blob, BytesView payload);

  uint64_t size() const { return tree_.size(); }
  const Bytes& public_key() const { return keys_.public_key; }

  /// Sign the current tree head.
  Result<Attestation> Attest() const;

  /// Sign the head over the first `size` witnesses — reproduces a
  /// historical attestation from a rebuilt tree (restart cross-check).
  Result<Attestation> AttestPrefix(uint64_t size) const;

 private:
  uint64_t uuid_;
  crypto::SigningKeyPair keys_;
  MerkleTree tree_;
};

/// Consumer-side check: does `(digest_blob, payload)` match chunk
/// `chunk_index` of the attested stream, per the audit path?
Status VerifyChunk(const Attestation& attestation, BytesView owner_public,
                   uint64_t chunk_index, BytesView digest_blob,
                   BytesView payload, const AuditPath& path);

/// Wire encoding for audit paths (served by the server).
void EncodeAuditPath(BinaryWriter& w, const AuditPath& path);
Result<AuditPath> DecodeAuditPath(BinaryReader& r);

}  // namespace tc::integrity
