#include "integrity/attestation.hpp"

namespace tc::integrity {

namespace {
constexpr size_t kMaxAuditPathLen = 64;  // a 2^64-leaf tree is depth <= 64
}

Hash ChunkWitness(uint64_t uuid, uint64_t chunk_index, BytesView digest_blob,
                  BytesView payload) {
  BinaryWriter w(digest_blob.size() + payload.size() + 24);
  w.PutU64(uuid);
  w.PutU64(chunk_index);
  w.PutBytes(digest_blob);
  w.PutBytes(payload);
  return LeafHash(w.data());
}

Bytes Attestation::SignedBytes() const {
  BinaryWriter w(8 + 8 + sizeof(Hash));
  w.PutU64(uuid);
  w.PutU64(size);
  w.PutRaw(root);
  return std::move(w).Take();
}

Bytes Attestation::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  w.PutU64(size);
  w.PutRaw(root);
  w.PutBytes(signature);
  return std::move(w).Take();
}

Result<Attestation> Attestation::Decode(BytesView in) {
  BinaryReader r(in);
  Attestation a;
  TC_ASSIGN_OR_RETURN(a.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(a.size, r.GetU64());
  TC_ASSIGN_OR_RETURN(BytesView root, r.GetRaw(sizeof(Hash)));
  std::copy(root.begin(), root.end(), a.root.begin());
  TC_ASSIGN_OR_RETURN(a.signature, r.GetBytes());
  return a;
}

Status Attestation::Verify(BytesView owner_public) const {
  return crypto::VerifySignature(owner_public, SignedBytes(), signature);
}

Status StreamAttestor::Add(uint64_t index, BytesView digest_blob,
                           BytesView payload) {
  if (index != tree_.size()) {
    return FailedPrecondition("witnesses must arrive in order");
  }
  tree_.Append(ChunkWitness(uuid_, index, digest_blob, payload));
  return Status::Ok();
}

Result<Attestation> StreamAttestor::Attest() const {
  return AttestPrefix(tree_.size());
}

Result<Attestation> StreamAttestor::AttestPrefix(uint64_t size) const {
  Attestation a;
  a.uuid = uuid_;
  a.size = size;
  TC_ASSIGN_OR_RETURN(a.root, tree_.RootAt(size));
  TC_ASSIGN_OR_RETURN(a.signature,
                      crypto::SignMessage(keys_.secret_key, a.SignedBytes()));
  return a;
}

Status VerifyChunk(const Attestation& attestation, BytesView owner_public,
                   uint64_t chunk_index, BytesView digest_blob,
                   BytesView payload, const AuditPath& path) {
  TC_RETURN_IF_ERROR(attestation.Verify(owner_public));
  if (chunk_index >= attestation.size) {
    return OutOfRange("chunk is beyond the attested prefix");
  }
  Hash witness = ChunkWitness(attestation.uuid, chunk_index, digest_blob,
                              payload);
  return VerifyAuditPath(attestation.root, witness, path);
}

void EncodeAuditPath(BinaryWriter& w, const AuditPath& path) {
  w.PutVar(path.siblings.size());
  for (size_t i = 0; i < path.siblings.size(); ++i) {
    w.PutU8(path.left_sibling[i] ? 1 : 0);
    w.PutRaw(path.siblings[i]);
  }
}

Result<AuditPath> DecodeAuditPath(BinaryReader& r) {
  TC_ASSIGN_OR_RETURN(uint64_t n, r.GetVar());
  if (n > kMaxAuditPathLen) return DataLoss("implausible audit path length");
  AuditPath path;
  path.siblings.reserve(n);
  path.left_sibling.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TC_ASSIGN_OR_RETURN(uint8_t left, r.GetU8());
    TC_ASSIGN_OR_RETURN(BytesView h, r.GetRaw(sizeof(Hash)));
    Hash hash;
    std::copy(h.begin(), h.end(), hash.begin());
    path.siblings.push_back(hash);
    path.left_sibling.push_back(left != 0);
  }
  return path;
}

}  // namespace tc::integrity
