// GGM key-derivation tree (§4.2.3, §A.1.3): a virtual balanced binary tree
// whose root is a secret seed and whose 2^height leaves form the keystream
// {k_0, k_1, ...}. Children are derived with a length-doubling PRG, so
// possession of an inner node ("access token") yields exactly the leaves of
// its subtree and — by the PRG's one-wayness — nothing else. This is the
// mechanism behind TimeCrypt's cryptographic time-range access control.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/constant_time.hpp"
#include "crypto/prg.hpp"

namespace tc::crypto {

/// An inner (or leaf) node handed out to principals. Holding a token is
/// equivalent to holding all leaves in [FirstLeaf(), LastLeaf()].
struct AccessToken {
  AccessToken() = default;
  AccessToken(uint32_t depth, uint64_t index, const Key128& node_key)
      : depth(depth), index(index), node_key(node_key) {}
  AccessToken(const AccessToken&) = default;
  AccessToken& operator=(const AccessToken&) = default;
  AccessToken(AccessToken&&) noexcept = default;
  AccessToken& operator=(AccessToken&&) noexcept = default;
  ~AccessToken() { SecureZero(node_key); }

  uint32_t depth = 0;   // 0 = root
  uint64_t index = 0;   // node index within its level, left-to-right
  TC_SECRET Key128 node_key{};

  friend bool operator==(const AccessToken& a, const AccessToken& b) {
    // node_key is secret material: compare it in constant time so token
    // equality can never leak key bytes through timing. The position
    // fields are public and may short-circuit.
    return a.depth == b.depth && a.index == b.index &&
           ConstantTimeEqual(a.node_key, b.node_key);
  }
};

/// The owner-side tree: knows the root seed and can derive any leaf or any
/// token cover. Thread-compatible (const methods are safe concurrently).
class GgmTree {
 public:
  /// height in [1, 63]; the keystream has 2^height leaves.
  GgmTree(Key128 root_seed, uint32_t height,
          PrgKind prg_kind = PrgKind::kAesNi);
  ~GgmTree() { SecureZero(root_); }

  uint32_t height() const { return height_; }
  uint64_t num_leaves() const { return uint64_t{1} << height_; }

  /// Derive leaf key k_i by walking the root->leaf path (height PRG calls).
  Result<Key128> DeriveLeaf(uint64_t index) const;

  /// Minimal set of subtree roots exactly covering leaves [first, last]
  /// (inclusive). At most 2*height tokens (canonical segment cover).
  Result<std::vector<AccessToken>> CoverRange(uint64_t first,
                                              uint64_t last) const;

  /// Derive the node key at (depth, index). depth 0/index 0 is the root.
  Result<Key128> DeriveNode(uint32_t depth, uint64_t index) const;

 private:
  TC_SECRET Key128 root_;
  uint32_t height_;
  std::unique_ptr<Prg> prg_;
};

/// Consumer-side view: a set of tokens received in a grant. Can derive
/// exactly the leaves covered by its tokens.
class TokenSet {
 public:
  TokenSet(std::vector<AccessToken> tokens, uint32_t tree_height,
           PrgKind prg_kind = PrgKind::kAesNi);

  /// Leaf range [first, last] covered by a single token.
  static uint64_t FirstLeaf(const AccessToken& t, uint32_t tree_height);
  static uint64_t LastLeaf(const AccessToken& t, uint32_t tree_height);

  bool Covers(uint64_t leaf_index) const;

  /// Derive leaf k_i; PermissionDenied if no token covers it — this is the
  /// cryptographic enforcement surface (we simply cannot compute the key).
  Result<Key128> DeriveLeaf(uint64_t leaf_index) const;

  const std::vector<AccessToken>& tokens() const { return tokens_; }
  uint32_t tree_height() const { return height_; }

 private:
  std::vector<AccessToken> tokens_;
  uint32_t height_;
  std::unique_ptr<Prg> prg_;
};

/// Amortized-O(1) sequential leaf derivation: keeps the root->leaf path as a
/// stack and reuses the shared prefix between consecutive leaves. This is
/// the ingest fast path — encrypting chunk i needs leaves i and i+1, and
/// chunks arrive in order, so deriving each from the root (log n PRG calls)
/// would waste a factor of ~height.
class SequentialLeafIterator {
 public:
  /// Iterates leaves [start, 2^height) of the tree rooted at root_key, where
  /// root_depth/root_index identify that root in the global tree (use
  /// depth 0/index 0 with the master seed for the whole keystream).
  SequentialLeafIterator(Key128 root_key, uint32_t root_depth,
                         uint64_t root_index, uint32_t tree_height,
                         uint64_t start_leaf,
                         PrgKind prg_kind = PrgKind::kAesNi);

  /// Key of the current leaf.
  const Key128& Current() const { return path_.back().key; }
  uint64_t CurrentIndex() const { return current_; }
  bool AtEnd() const { return current_ >= end_; }

  /// Advance to the next leaf. Returns false at the end of the subtree.
  bool Next();

 private:
  struct PathEntry {
    PathEntry() = default;
    PathEntry(const Key128& key, uint64_t index) : key(key), index(index) {}
    PathEntry(const PathEntry&) = default;
    PathEntry& operator=(const PathEntry&) = default;
    PathEntry(PathEntry&&) noexcept = default;
    PathEntry& operator=(PathEntry&&) noexcept = default;
    // Popped path suffixes (Next() shrinks the stack every step) scrub
    // themselves — the re-derivable inner-node keys never linger.
    ~PathEntry() { SecureZero(key); }

    TC_SECRET Key128 key{};
    uint64_t index = 0;  // node index at this depth (global)
  };

  void DescendTo(uint64_t leaf_index);

  std::unique_ptr<Prg> prg_;
  std::vector<PathEntry> path_;  // path_[0] = subtree root ... back() = leaf
  uint32_t root_depth_;
  uint32_t height_;  // global tree height
  uint64_t current_ = 0;
  uint64_t end_ = 0;
};

}  // namespace tc::crypto
