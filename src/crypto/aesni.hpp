// Hardware-accelerated AES-128 single-block encryption via AES-NI compiler
// intrinsics. This is the production PRG primitive (§6.2: "AES-NI is the
// best candidate in terms of performance"). Falls back to the software
// implementation when the CPU lacks AES-NI.
#pragma once

#include "crypto/soft_aes.hpp"

namespace tc::crypto {

/// True if this CPU supports the AES-NI instruction set.
bool CpuHasAesNi();

/// AES-128 with precomputed round keys, encrypt-only, AES-NI backed.
/// The key schedule is computed once at construction; EncryptBlock is then
/// ~10 aesenc instructions (a few ns).
class AesNiBlock {
 public:
  explicit AesNiBlock(TC_SECRET const Key128& key);
  ~AesNiBlock() { SecureZero(round_keys_); }

  Block128 EncryptBlock(const Block128& plaintext) const;

  /// Encrypt two independent blocks (pipelines the AES rounds; used by the
  /// PRG which always expands one node into two children).
  void EncryptTwoBlocks(const Block128& in0, const Block128& in1,
                        Block128& out0, Block128& out1) const;

 private:
  // Round keys stored as raw bytes; reinterpreted as __m128i internally to
  // keep SSE types out of this header. An expanded form of the key itself,
  // scrubbed on destruction.
  TC_SECRET alignas(16) std::array<uint8_t, 176> round_keys_{};
};

}  // namespace tc::crypto
