#include "crypto/ed25519.hpp"

#include <openssl/evp.h>

#include <cstdio>
#include <cstdlib>
#include <memory>

namespace tc::crypto {

namespace {

[[noreturn]] void FatalOpenSsl(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL %s failed\n", what);
  std::abort();
}

struct PkeyDeleter {
  void operator()(EVP_PKEY* p) const { EVP_PKEY_free(p); }
};
using PkeyPtr = std::unique_ptr<EVP_PKEY, PkeyDeleter>;

struct MdCtxDeleter {
  void operator()(EVP_MD_CTX* p) const { EVP_MD_CTX_free(p); }
};
using MdCtxPtr = std::unique_ptr<EVP_MD_CTX, MdCtxDeleter>;

}  // namespace

SigningKeyPair GenerateSigningKeyPair() {
  EVP_PKEY* raw = nullptr;
  EVP_PKEY_CTX* ctx = EVP_PKEY_CTX_new_id(EVP_PKEY_ED25519, nullptr);
  if (ctx == nullptr || EVP_PKEY_keygen_init(ctx) != 1 ||
      EVP_PKEY_keygen(ctx, &raw) != 1) {
    FatalOpenSsl("Ed25519 keygen");
  }
  EVP_PKEY_CTX_free(ctx);
  PkeyPtr pkey(raw);

  SigningKeyPair pair;
  pair.public_key.resize(kEd25519PublicKeySize);
  pair.secret_key.resize(kEd25519SecretKeySize);
  size_t pub_len = pair.public_key.size();
  size_t sec_len = pair.secret_key.size();
  if (EVP_PKEY_get_raw_public_key(pkey.get(), pair.public_key.data(),
                                  &pub_len) != 1 ||
      EVP_PKEY_get_raw_private_key(pkey.get(), pair.secret_key.data(),
                                   &sec_len) != 1) {
    FatalOpenSsl("Ed25519 key export");
  }
  return pair;
}

Result<Bytes> SignMessage(BytesView secret_key, BytesView message) {
  if (secret_key.size() != kEd25519SecretKeySize) {
    return InvalidArgument("Ed25519 secret key must be 32 bytes");
  }
  PkeyPtr pkey(EVP_PKEY_new_raw_private_key(
      EVP_PKEY_ED25519, nullptr, secret_key.data(), secret_key.size()));
  if (!pkey) return InvalidArgument("malformed Ed25519 secret key");

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) FatalOpenSsl("EVP_MD_CTX_new");
  if (EVP_DigestSignInit(ctx.get(), nullptr, nullptr, nullptr, pkey.get()) !=
      1) {
    return Internal("Ed25519 sign init failed");
  }
  Bytes signature(kEd25519SignatureSize);
  size_t sig_len = signature.size();
  if (EVP_DigestSign(ctx.get(), signature.data(), &sig_len, message.data(),
                     message.size()) != 1 ||
      sig_len != kEd25519SignatureSize) {
    return Internal("Ed25519 signing failed");
  }
  return signature;
}

Status VerifySignature(BytesView public_key, BytesView message,
                       BytesView signature) {
  if (public_key.size() != kEd25519PublicKeySize) {
    return InvalidArgument("Ed25519 public key must be 32 bytes");
  }
  if (signature.size() != kEd25519SignatureSize) {
    return InvalidArgument("Ed25519 signature must be 64 bytes");
  }
  PkeyPtr pkey(EVP_PKEY_new_raw_public_key(
      EVP_PKEY_ED25519, nullptr, public_key.data(), public_key.size()));
  if (!pkey) return InvalidArgument("malformed Ed25519 public key");

  MdCtxPtr ctx(EVP_MD_CTX_new());
  if (!ctx) FatalOpenSsl("EVP_MD_CTX_new");
  if (EVP_DigestVerifyInit(ctx.get(), nullptr, nullptr, nullptr,
                           pkey.get()) != 1) {
    return Internal("Ed25519 verify init failed");
  }
  if (EVP_DigestVerify(ctx.get(), signature.data(), signature.size(),
                       message.data(), message.size()) != 1) {
    return PermissionDenied("Ed25519 signature verification failed");
  }
  return Status::Ok();
}

}  // namespace tc::crypto
