// Thread-local RAII holder for reusable OpenSSL EVP contexts. Hot paths
// (SHA-256 in the PRG, AES-GCM chunk sealing) reuse one context per thread
// instead of allocating per call; the holder frees it at thread exit so
// worker threads don't leak one context each.
#pragma once

namespace tc::crypto::internal {

template <typename Ctx, Ctx* (*New)(), void (*Free)(Ctx*)>
Ctx* ThreadLocalCtx() {
  struct Holder {
    Ctx* ctx = New();
    ~Holder() { Free(ctx); }
  };
  thread_local Holder holder;
  return holder.ctx;
}

}  // namespace tc::crypto::internal
