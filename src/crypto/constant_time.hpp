// Constant-time comparison for secret material (keys, digests, MACs).
//
// A short-circuiting == / memcmp leaks, through timing, the length of the
// matching prefix — enough to forge a MAC byte-by-byte against a verifier
// that compares naively. Every comparison whose operands include secret
// bytes must go through ConstantTimeEqual: it always touches every byte
// and folds the differences into a single accumulator, so the running time
// depends only on the length. tools/lint/tc_lint.py enforces this for
// src/crypto/.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace tc::crypto {

/// True iff the two byte ranges are identical. Runs in time that depends
/// only on the lengths, never on the contents or the position of the first
/// difference. A length mismatch returns false immediately — lengths are
/// public (they are part of the wire format / key schedule), only the
/// bytes are secret.
inline bool ConstantTimeEqual(std::span<const uint8_t> a,
                              std::span<const uint8_t> b) {
  if (a.size() != b.size()) return false;
  // volatile keeps the compiler from collapsing the loop back into an
  // early-exit memcmp once it inlines both sides.
  volatile uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

template <size_t N>
inline bool ConstantTimeEqual(const std::array<uint8_t, N>& a,
                              const std::array<uint8_t, N>& b) {
  return ConstantTimeEqual(std::span<const uint8_t>(a.data(), N),
                           std::span<const uint8_t>(b.data(), N));
}

}  // namespace tc::crypto
