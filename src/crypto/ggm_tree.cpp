#include "crypto/ggm_tree.hpp"

#include <cassert>

namespace tc::crypto {

GgmTree::GgmTree(Key128 root_seed, uint32_t height, PrgKind prg_kind)
    : root_(root_seed), height_(height), prg_(MakePrg(prg_kind)) {
  assert(height >= 1 && height <= 63);
}

Result<Key128> GgmTree::DeriveLeaf(uint64_t index) const {
  return DeriveNode(height_, index);
}

Result<Key128> GgmTree::DeriveNode(uint32_t depth, uint64_t index) const {
  if (depth > height_) return OutOfRange("node depth exceeds tree height");
  if (depth < 64 && index >= (uint64_t{1} << depth)) {
    return OutOfRange("node index out of range for depth");
  }
  Key128 node = root_;
  // Walk the path from the root: bit (depth-1-i) of `index` selects the
  // child at step i.
  for (uint32_t i = 0; i < depth; ++i) {
    bool right = (index >> (depth - 1 - i)) & 1;
    node = prg_->ExpandOne(node, right);
  }
  return node;
}

Result<std::vector<AccessToken>> GgmTree::CoverRange(uint64_t first,
                                                     uint64_t last) const {
  if (first > last) return InvalidArgument("empty token range");
  if (last >= num_leaves()) return OutOfRange("leaf index exceeds keystream");

  // Canonical cover: greedily take the largest aligned subtree that starts
  // at `first` and does not extend past `last`.
  std::vector<AccessToken> cover;
  uint64_t pos = first;
  while (pos <= last) {
    // Largest level such that pos is aligned and the subtree fits.
    uint32_t up = 0;
    while (up < height_) {
      uint64_t size = uint64_t{2} << up;  // subtree leaf count at up+1
      if ((pos & (size - 1)) != 0) break;
      if (pos + size - 1 > last) break;
      ++up;
    }
    uint64_t size = uint64_t{1} << up;
    uint32_t depth = height_ - up;
    uint64_t index = pos >> up;
    TC_ASSIGN_OR_RETURN(Key128 key, DeriveNode(depth, index));
    cover.push_back(AccessToken{depth, index, key});
    SecureZero(key);
    pos += size;
    if (pos == 0) break;  // wrapped (whole 2^64 space) — cannot happen h<=63
  }
  return cover;
}

TokenSet::TokenSet(std::vector<AccessToken> tokens, uint32_t tree_height,
                   PrgKind prg_kind)
    : tokens_(std::move(tokens)),
      height_(tree_height),
      prg_(MakePrg(prg_kind)) {}

uint64_t TokenSet::FirstLeaf(const AccessToken& t, uint32_t tree_height) {
  return t.index << (tree_height - t.depth);
}

uint64_t TokenSet::LastLeaf(const AccessToken& t, uint32_t tree_height) {
  uint32_t up = tree_height - t.depth;
  return (t.index << up) + ((uint64_t{1} << up) - 1);
}

bool TokenSet::Covers(uint64_t leaf_index) const {
  for (const auto& t : tokens_) {
    if (leaf_index >= FirstLeaf(t, height_) &&
        leaf_index <= LastLeaf(t, height_)) {
      return true;
    }
  }
  return false;
}

Result<Key128> TokenSet::DeriveLeaf(uint64_t leaf_index) const {
  for (const auto& t : tokens_) {
    uint64_t first = FirstLeaf(t, height_);
    uint64_t last = LastLeaf(t, height_);
    if (leaf_index < first || leaf_index > last) continue;
    // Walk down from the token: the low (height - depth) bits of leaf_index
    // select the path within the subtree.
    uint32_t sub_height = height_ - t.depth;
    Key128 node = t.node_key;
    for (uint32_t i = 0; i < sub_height; ++i) {
      bool right = (leaf_index >> (sub_height - 1 - i)) & 1;
      node = prg_->ExpandOne(node, right);
    }
    return node;
  }
  return PermissionDenied("no access token covers requested key");
}

SequentialLeafIterator::SequentialLeafIterator(Key128 root_key,
                                               uint32_t root_depth,
                                               uint64_t root_index,
                                               uint32_t tree_height,
                                               uint64_t start_leaf,
                                               PrgKind prg_kind)
    : prg_(MakePrg(prg_kind)), root_depth_(root_depth), height_(tree_height) {
  uint32_t sub_height = tree_height - root_depth;
  uint64_t first = root_index << sub_height;
  end_ = first + (uint64_t{1} << sub_height);
  assert(start_leaf >= first && start_leaf < end_);
  path_.reserve(sub_height + 1);
  path_.push_back({root_key, root_index});
  current_ = start_leaf;
  DescendTo(start_leaf);
}

void SequentialLeafIterator::DescendTo(uint64_t leaf_index) {
  // Extend the path from its current tail down to the leaf.
  while (path_.size() < static_cast<size_t>(height_ - root_depth_) + 1) {
    uint32_t depth = root_depth_ + static_cast<uint32_t>(path_.size()) - 1;
    uint32_t shift = height_ - depth - 1;
    bool right = (leaf_index >> shift) & 1;
    Key128 child = prg_->ExpandOne(path_.back().key, right);
    uint64_t child_index = (path_.back().index << 1) | (right ? 1 : 0);
    path_.push_back({child, child_index});
    SecureZero(child);
  }
}

bool SequentialLeafIterator::Next() {
  if (current_ + 1 >= end_) {
    current_ = end_;
    return false;
  }
  ++current_;
  // Pop up to the deepest ancestor shared with the new leaf, then descend.
  // The number of trailing one-bits of the previous leaf tells how many
  // levels to pop: leaf 0b0111 -> 0b1000 changes the bottom 4 path steps.
  uint64_t prev = current_ - 1;
  int pops = 1;
  while ((prev & 1) == 1 && pops < static_cast<int>(path_.size()) - 1) {
    prev >>= 1;
    ++pops;
  }
  path_.resize(path_.size() - pops);
  DescendTo(current_);
  return true;
}

}  // namespace tc::crypto
