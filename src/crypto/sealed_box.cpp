#include "crypto/sealed_box.hpp"

#include <openssl/evp.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "crypto/aes_gcm.hpp"
#include "crypto/sha256.hpp"

namespace tc::crypto {

namespace {

[[noreturn]] void FatalOpenSsl(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL %s failed\n", what);
  std::abort();
}

struct PkeyDeleter {
  void operator()(EVP_PKEY* p) const { EVP_PKEY_free(p); }
};
using PkeyPtr = std::unique_ptr<EVP_PKEY, PkeyDeleter>;

struct CtxDeleter {
  void operator()(EVP_PKEY_CTX* p) const { EVP_PKEY_CTX_free(p); }
};
using CtxPtr = std::unique_ptr<EVP_PKEY_CTX, CtxDeleter>;

PkeyPtr LoadPublic(BytesView raw) {
  return PkeyPtr(EVP_PKEY_new_raw_public_key(EVP_PKEY_X25519, nullptr,
                                             raw.data(), raw.size()));
}

PkeyPtr LoadSecret(BytesView raw) {
  return PkeyPtr(EVP_PKEY_new_raw_private_key(EVP_PKEY_X25519, nullptr,
                                              raw.data(), raw.size()));
}

Result<Bytes> Ecdh(EVP_PKEY* secret, EVP_PKEY* peer_public) {
  CtxPtr ctx(EVP_PKEY_CTX_new(secret, nullptr));
  if (!ctx || EVP_PKEY_derive_init(ctx.get()) != 1 ||
      EVP_PKEY_derive_set_peer(ctx.get(), peer_public) != 1) {
    return Internal("X25519 derive init failed");
  }
  size_t len = 0;
  if (EVP_PKEY_derive(ctx.get(), nullptr, &len) != 1) {
    return Internal("X25519 derive length failed");
  }
  Bytes shared(len);
  if (EVP_PKEY_derive(ctx.get(), shared.data(), &len) != 1) {
    return Internal("X25519 derive failed");
  }
  shared.resize(len);
  return shared;
}

/// KDF over the ECDH output, bound to both public keys to prevent
/// key-substitution confusion.
Key128 DeriveBoxKey(BytesView shared, BytesView eph_pub, BytesView rcpt_pub) {
  Bytes info;
  info.reserve(eph_pub.size() + rcpt_pub.size());
  Append(info, eph_pub);
  Append(info, rcpt_pub);
  Bytes okm = HkdfSha256(shared, ToBytes("timecrypt-sealed-box-v1"), info, 16);
  Key128 key;
  std::memcpy(key.data(), okm.data(), 16);
  SecureZero(okm);
  return key;
}

}  // namespace

BoxKeyPair GenerateBoxKeyPair() {
  CtxPtr ctx(EVP_PKEY_CTX_new_id(EVP_PKEY_X25519, nullptr));
  EVP_PKEY* raw = nullptr;
  if (!ctx || EVP_PKEY_keygen_init(ctx.get()) != 1 ||
      EVP_PKEY_keygen(ctx.get(), &raw) != 1) {
    FatalOpenSsl("X25519 keygen");
  }
  PkeyPtr pkey(raw);
  BoxKeyPair pair;
  size_t len = kX25519KeySize;
  pair.public_key.resize(len);
  if (EVP_PKEY_get_raw_public_key(pkey.get(), pair.public_key.data(), &len) !=
      1) {
    FatalOpenSsl("get_raw_public_key");
  }
  len = kX25519KeySize;
  pair.secret_key.resize(len);
  if (EVP_PKEY_get_raw_private_key(pkey.get(), pair.secret_key.data(), &len) !=
      1) {
    FatalOpenSsl("get_raw_private_key");
  }
  return pair;
}

Result<Bytes> SealToPublicKey(BytesView recipient_public, BytesView plaintext) {
  if (recipient_public.size() != kX25519KeySize) {
    return InvalidArgument("recipient public key must be 32 bytes");
  }
  PkeyPtr rcpt = LoadPublic(recipient_public);
  if (!rcpt) return InvalidArgument("malformed recipient public key");

  BoxKeyPair eph = GenerateBoxKeyPair();
  PkeyPtr eph_secret = LoadSecret(eph.secret_key);
  if (!eph_secret) return Internal("ephemeral key load failed");

  TC_ASSIGN_OR_RETURN(Bytes shared, Ecdh(eph_secret.get(), rcpt.get()));
  Key128 key = DeriveBoxKey(shared, eph.public_key, recipient_public);
  SecureZero(shared);

  Bytes out = eph.public_key;
  Bytes sealed = GcmSeal(key, plaintext);
  Append(out, sealed);
  SecureZero(key);
  // eph.secret_key is a SecretBuffer: scrubbed by its destructor here.
  return out;
}

Result<Bytes> OpenSealed(const BoxKeyPair& recipient, BytesView sealed) {
  if (sealed.size() < kX25519KeySize + kGcmNonceSize + kGcmTagSize) {
    return DataLoss("sealed box too short");
  }
  BytesView eph_pub = sealed.subspan(0, kX25519KeySize);
  BytesView body = sealed.subspan(kX25519KeySize);

  PkeyPtr secret = LoadSecret(recipient.secret_key);
  PkeyPtr eph = LoadPublic(eph_pub);
  if (!secret || !eph) return InvalidArgument("malformed key material");

  TC_ASSIGN_OR_RETURN(Bytes shared, Ecdh(secret.get(), eph.get()));
  Key128 key = DeriveBoxKey(shared, eph_pub, recipient.public_key);
  SecureZero(shared);
  Result<Bytes> plain = GcmOpen(key, body);
  SecureZero(key);
  return plain;
}

}  // namespace tc::crypto
