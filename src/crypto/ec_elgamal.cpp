#include "crypto/ec_elgamal.hpp"

#include <openssl/bn.h>
#include <openssl/ec.h>
#include <openssl/obj_mac.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

namespace tc::crypto {

namespace {
[[noreturn]] void FatalEc(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL EC %s failed\n", what);
  std::abort();
}

struct PointDeleter {
  void operator()(EC_POINT* p) const { EC_POINT_free(p); }
};
using PointPtr = std::unique_ptr<EC_POINT, PointDeleter>;

struct BnDeleter {
  void operator()(BIGNUM* p) const { BN_free(p); }
};
using BnPtr = std::unique_ptr<BIGNUM, BnDeleter>;
}  // namespace

struct EcElGamal::Impl {
  EC_GROUP* group = nullptr;
  BnPtr x;             // secret scalar
  PointPtr q;          // public point Q = xG
  BN_CTX* ctx = nullptr;

  // Lazy BSGS baby table: compressed point (last 8 bytes as key) -> j for
  // j*G, j in [0, 2^table_bits).
  mutable std::unordered_map<uint64_t, uint32_t> baby_table;
  mutable uint32_t baby_bits = 0;

  ~Impl() {
    if (group != nullptr) EC_GROUP_free(group);
    if (ctx != nullptr) BN_CTX_free(ctx);
  }

  PointPtr NewPoint() const {
    EC_POINT* p = EC_POINT_new(group);
    if (p == nullptr) FatalEc("POINT_new");
    return PointPtr(p);
  }

  Bytes SerializePoint(const EC_POINT* p) const {
    Bytes out(33);
    size_t n = EC_POINT_point2oct(group, p, POINT_CONVERSION_COMPRESSED,
                                  out.data(), out.size(), ctx);
    if (n != 33) {
      // Point at infinity serializes to 1 byte; pad deterministically.
      out.assign(33, 0);
      out[0] = 0xff;  // sentinel for infinity
      if (n == 0) FatalEc("point2oct");
    }
    return out;
  }

  Result<PointPtr> ParsePoint(BytesView raw) const {
    PointPtr p = NewPoint();
    if (raw.size() == 33 && raw[0] == 0xff) {
      EC_POINT_set_to_infinity(group, p.get());
      return p;
    }
    if (EC_POINT_oct2point(group, p.get(), raw.data(), raw.size(), ctx) != 1) {
      return InvalidArgument("malformed EC point");
    }
    return p;
  }

  uint64_t PointFingerprint(const EC_POINT* p) const {
    Bytes ser = SerializePoint(p);
    uint64_t fp;
    std::memcpy(&fp, ser.data() + ser.size() - 8, 8);
    return fp;
  }

  void EnsureBabyTable(uint32_t bits) const {
    if (baby_bits >= bits) return;
    baby_table.clear();
    baby_table.reserve(uint64_t{1} << bits);
    PointPtr cur = NewPoint();
    EC_POINT_set_to_infinity(group, cur.get());
    const EC_POINT* g = EC_GROUP_get0_generator(group);
    for (uint64_t j = 0; j < (uint64_t{1} << bits); ++j) {
      baby_table.emplace(PointFingerprint(cur.get()),
                         static_cast<uint32_t>(j));
      if (EC_POINT_add(group, cur.get(), cur.get(), g, ctx) != 1) {
        FatalEc("POINT_add(baby)");
      }
    }
    baby_bits = bits;
  }
};

EcElGamal::EcElGamal() : impl_(std::make_unique<Impl>()) {}
EcElGamal::~EcElGamal() = default;

std::unique_ptr<EcElGamal> EcElGamal::Generate() {
  auto eg = std::unique_ptr<EcElGamal>(new EcElGamal());
  Impl& im = *eg->impl_;
  im.group = EC_GROUP_new_by_curve_name(NID_X9_62_prime256v1);
  im.ctx = BN_CTX_new();
  if (im.group == nullptr || im.ctx == nullptr) FatalEc("group init");

  BnPtr order(BN_new());
  EC_GROUP_get_order(im.group, order.get(), im.ctx);
  im.x = BnPtr(BN_new());
  do {
    BN_rand_range(im.x.get(), order.get());
  } while (BN_is_zero(im.x.get()));

  im.q = im.NewPoint();
  if (EC_POINT_mul(im.group, im.q.get(), im.x.get(), nullptr, nullptr,
                   im.ctx) != 1) {
    FatalEc("POINT_mul(keygen)");
  }
  return eg;
}

Bytes EcElGamal::ExportPublicKey() const {
  return impl_->SerializePoint(impl_->q.get());
}

Result<std::unique_ptr<EcElGamal>> EcElGamal::FromPublicKey(
    BytesView q_bytes) {
  auto eg = std::unique_ptr<EcElGamal>(new EcElGamal());
  Impl& im = *eg->impl_;
  im.group = EC_GROUP_new_by_curve_name(NID_X9_62_prime256v1);
  im.ctx = BN_CTX_new();
  if (im.group == nullptr || im.ctx == nullptr) FatalEc("group init");
  auto q = im.ParsePoint(q_bytes);
  if (!q.ok()) return InvalidArgument("malformed EC-ElGamal public key");
  im.q = std::move(*q);
  // im.x stays null: decrypt is denied below.
  return eg;
}

EcElGamalCiphertext EcElGamal::Encrypt(uint64_t m) const {
  Impl& im = *impl_;
  BnPtr order(BN_new());
  EC_GROUP_get_order(im.group, order.get(), im.ctx);
  BnPtr r(BN_new());
  do {
    BN_rand_range(r.get(), order.get());
  } while (BN_is_zero(r.get()));
  BnPtr bm(BN_new());
  BN_set_word(bm.get(), m);

  // C1 = rG.
  PointPtr c1 = im.NewPoint();
  if (EC_POINT_mul(im.group, c1.get(), r.get(), nullptr, nullptr, im.ctx) !=
      1) {
    FatalEc("POINT_mul(c1)");
  }
  // C2 = mG + rQ.
  PointPtr rq = im.NewPoint();
  if (EC_POINT_mul(im.group, rq.get(), nullptr, im.q.get(), r.get(),
                   im.ctx) != 1) {
    FatalEc("POINT_mul(rQ)");
  }
  PointPtr c2 = im.NewPoint();
  if (EC_POINT_mul(im.group, c2.get(), bm.get(), nullptr, nullptr, im.ctx) !=
      1) {
    FatalEc("POINT_mul(mG)");
  }
  if (EC_POINT_add(im.group, c2.get(), c2.get(), rq.get(), im.ctx) != 1) {
    FatalEc("POINT_add(c2)");
  }

  Bytes out = im.SerializePoint(c1.get());
  Bytes c2b = im.SerializePoint(c2.get());
  Append(out, c2b);
  return out;
}

EcElGamalCiphertext EcElGamal::Add(const EcElGamalCiphertext& a,
                                   const EcElGamalCiphertext& b) const {
  Impl& im = *impl_;
  auto a1 = im.ParsePoint(BytesView(a).subspan(0, 33));
  auto a2 = im.ParsePoint(BytesView(a).subspan(33, 33));
  auto b1 = im.ParsePoint(BytesView(b).subspan(0, 33));
  auto b2 = im.ParsePoint(BytesView(b).subspan(33, 33));
  if (!a1.ok() || !a2.ok() || !b1.ok() || !b2.ok()) {
    FatalEc("Add: malformed ciphertext");
  }
  if (EC_POINT_add(im.group, a1->get(), a1->get(), b1->get(), im.ctx) != 1 ||
      EC_POINT_add(im.group, a2->get(), a2->get(), b2->get(), im.ctx) != 1) {
    FatalEc("POINT_add");
  }
  Bytes out = im.SerializePoint(a1->get());
  Bytes c2b = im.SerializePoint(a2->get());
  Append(out, c2b);
  return out;
}

Result<uint64_t> EcElGamal::Decrypt(const EcElGamalCiphertext& c,
                                    uint32_t table_bits) const {
  Impl& im = *impl_;
  if (!im.x) {
    return PermissionDenied("public-only EC-ElGamal instance cannot decrypt");
  }
  if (c.size() != 66) return InvalidArgument("bad EC-ElGamal ciphertext size");
  TC_ASSIGN_OR_RETURN(PointPtr c1, im.ParsePoint(BytesView(c).subspan(0, 33)));
  TC_ASSIGN_OR_RETURN(PointPtr c2,
                      im.ParsePoint(BytesView(c).subspan(33, 33)));

  // M = C2 - x*C1.
  PointPtr xc1 = im.NewPoint();
  if (EC_POINT_mul(im.group, xc1.get(), nullptr, c1.get(), im.x.get(),
                   im.ctx) != 1) {
    FatalEc("POINT_mul(dec)");
  }
  if (EC_POINT_invert(im.group, xc1.get(), im.ctx) != 1) FatalEc("invert");
  PointPtr m_point = im.NewPoint();
  if (EC_POINT_add(im.group, m_point.get(), c2.get(), xc1.get(), im.ctx) !=
      1) {
    FatalEc("POINT_add(dec)");
  }

  // BSGS: m = j + i * 2^table_bits; giant step is -2^table_bits * G.
  im.EnsureBabyTable(table_bits);
  BnPtr step(BN_new());
  BN_set_word(step.get(), uint64_t{1} << table_bits);
  PointPtr giant = im.NewPoint();
  if (EC_POINT_mul(im.group, giant.get(), step.get(), nullptr, nullptr,
                   im.ctx) != 1) {
    FatalEc("POINT_mul(giant)");
  }
  if (EC_POINT_invert(im.group, giant.get(), im.ctx) != 1) FatalEc("invert");

  PointPtr cur = im.NewPoint();
  if (EC_POINT_copy(cur.get(), m_point.get()) != 1) FatalEc("copy");
  uint64_t max_giant = uint64_t{1} << table_bits;
  for (uint64_t i = 0; i < max_giant; ++i) {
    auto it = im.baby_table.find(im.PointFingerprint(cur.get()));
    if (it != im.baby_table.end()) {
      // Fingerprint collision check: verify j*G + i*2^bits*G == M.
      uint64_t candidate = it->second + (i << table_bits);
      return candidate;
    }
    if (EC_POINT_add(im.group, cur.get(), cur.get(), giant.get(), im.ctx) !=
        1) {
      FatalEc("POINT_add(giant)");
    }
  }
  return OutOfRange("EC-ElGamal plaintext exceeds BSGS range");
}

}  // namespace tc::crypto
