// AES-GCM-128 authenticated encryption for chunk payloads (§4.1: raw data
// points are "compressed and encrypted with a randomized encryption scheme
// (AES-GCM-128)"). The per-chunk key is H(k_i - k_{i+1}) per §4.3.
#pragma once

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

constexpr size_t kGcmNonceSize = 12;
constexpr size_t kGcmTagSize = 16;

/// Encrypt: output layout is nonce(12) || ciphertext || tag(16). A fresh
/// random nonce is drawn per call; with per-chunk keys nonce reuse across
/// chunks is impossible by construction.
Bytes GcmSeal(TC_SECRET const Key128& key, BytesView plaintext,
              BytesView aad = {});

/// Decrypt + authenticate. DataLoss on any tampering/truncation.
Result<Bytes> GcmOpen(TC_SECRET const Key128& key, BytesView sealed,
                      BytesView aad = {});

/// The chunk payload key of §4.3: H(k_i - k_{i+1}) where subtraction is the
/// component-wise uint64 difference of the two 128-bit leaves (mod 2^64 per
/// lane), hashed and truncated to 128 bits.
Key128 ChunkPayloadKey(const Key128& leaf_i, const Key128& leaf_next);

}  // namespace tc::crypto
