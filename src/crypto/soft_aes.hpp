// Portable software AES-128 (encrypt-only), implemented from the FIPS-197
// specification. Exists so the Fig 6 benchmark can compare a software AES
// PRG against the AES-NI PRG on identical workloads; production code paths
// use AesNiBlock (aesni.hpp).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/secret.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

using Block128 = std::array<uint8_t, 16>;

/// AES-128 block cipher with a precomputed key schedule. Encrypt-only:
/// the PRG and CTR-style uses never need the inverse cipher.
class SoftAes128 {
 public:
  explicit SoftAes128(TC_SECRET const Key128& key) { ExpandKey(key); }
  ~SoftAes128() { SecureZero(round_keys_); }

  /// Encrypt one 16-byte block (ECB single block).
  Block128 EncryptBlock(const Block128& plaintext) const;

 private:
  void ExpandKey(const Key128& key);

  // 11 round keys x 16 bytes — an expanded form of the key itself, scrubbed
  // on destruction (the PRG constructs one of these per expand call).
  TC_SECRET std::array<uint8_t, 176> round_keys_{};
};

}  // namespace tc::crypto
