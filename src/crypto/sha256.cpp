#include "crypto/sha256.hpp"

#include <openssl/evp.h>
#include <openssl/hmac.h>

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "crypto/evp_ctx.hpp"

namespace tc::crypto {

namespace {
[[noreturn]] void FatalOpenSsl(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL %s failed\n", what);
  std::abort();
}
}  // namespace

Sha256Digest Sha256(BytesView data) {
  return Sha256Concat(data, {});
}

Sha256Digest Sha256Concat(BytesView a, BytesView b) {
  // Thread-local context: SHA-256 is on the PRG hot path (Fig 6), so avoid
  // per-call allocation.
  EVP_MD_CTX* ctx = internal::ThreadLocalCtx<EVP_MD_CTX, EVP_MD_CTX_new,
                                             EVP_MD_CTX_free>();
  Sha256Digest out;
  if (EVP_DigestInit_ex(ctx, EVP_sha256(), nullptr) != 1) {
    FatalOpenSsl("DigestInit");
  }
  if (!a.empty() && EVP_DigestUpdate(ctx, a.data(), a.size()) != 1) {
    FatalOpenSsl("DigestUpdate");
  }
  if (!b.empty() && EVP_DigestUpdate(ctx, b.data(), b.size()) != 1) {
    FatalOpenSsl("DigestUpdate");
  }
  unsigned int len = 0;
  if (EVP_DigestFinal_ex(ctx, out.data(), &len) != 1 || len != out.size()) {
    FatalOpenSsl("DigestFinal");
  }
  return out;
}

Sha256Digest HmacSha256(BytesView key, BytesView data) {
  Sha256Digest out;
  unsigned int len = 0;
  if (HMAC(EVP_sha256(), key.data(), static_cast<int>(key.size()), data.data(),
           data.size(), out.data(), &len) == nullptr ||
      len != out.size()) {
    FatalOpenSsl("HMAC");
  }
  return out;
}

Bytes HkdfSha256(BytesView ikm, BytesView salt, BytesView info, size_t length) {
  assert(length <= 255 * 32 && "HKDF output too long");
  // Extract.
  Sha256Digest prk = HmacSha256(salt, ikm);
  // Expand.
  Bytes out;
  out.reserve(length);
  Bytes block;
  uint8_t counter = 1;
  while (out.size() < length) {
    Bytes input = block;
    Append(input, info);
    input.push_back(counter++);
    Sha256Digest t = HmacSha256(prk, input);
    block.assign(t.begin(), t.end());
    size_t take = std::min(block.size(), length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + take);
  }
  return out;
}

}  // namespace tc::crypto
