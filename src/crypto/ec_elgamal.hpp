// Lifted (exponential) EC-ElGamal — the second strawman digest cipher
// (§5: "EC-ElGamal (based on OpenSSL)"). Additively homomorphic on curve
// points:
//   Enc(m) = (rG, mG + rQ)   with public key Q = xG
//   Add    = component-wise point addition
//   Dec    = solve dlog of (C2 - x*C1) = mG  — baby-step/giant-step.
//
// Decryption cost grows with the plaintext magnitude (the dlog), which is
// why the paper reports "N/A" for EC-ElGamal decryption on IoT hardware.
#pragma once

#include <memory>

#include "common/status.hpp"
#include "common/bytes.hpp"

namespace tc::crypto {

/// Serialized ciphertext: two compressed P-256 points (33 bytes each).
using EcElGamalCiphertext = Bytes;

class EcElGamal {
 public:
  /// prime256v1 keypair (128-bit security, §6 setup).
  static std::unique_ptr<EcElGamal> Generate();

  /// Public point Q (compressed). Enough for Encrypt/Add.
  Bytes ExportPublicKey() const;

  /// Public-only instance (server side): Encrypt/Add work, Decrypt is
  /// PermissionDenied.
  static Result<std::unique_ptr<EcElGamal>> FromPublicKey(BytesView q_bytes);

  ~EcElGamal();
  EcElGamal(const EcElGamal&) = delete;
  EcElGamal& operator=(const EcElGamal&) = delete;

  size_t ciphertext_size() const { return 66; }  // 2 x 33-byte points

  EcElGamalCiphertext Encrypt(uint64_t m) const;

  EcElGamalCiphertext Add(const EcElGamalCiphertext& a,
                          const EcElGamalCiphertext& b) const;

  /// Decrypt via BSGS. Solves m in [0, max_plaintext); the baby-step table
  /// (built lazily, ~2^table_bits entries) bounds the solvable range to
  /// 2^(2*table_bits). Default table 2^21 covers 42-bit aggregates.
  Result<uint64_t> Decrypt(const EcElGamalCiphertext& c,
                           uint32_t table_bits = 21) const;

 private:
  EcElGamal();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tc::crypto
