#include "crypto/prg.hpp"

#include "crypto/aesni.hpp"
#include "crypto/sha256.hpp"
#include "crypto/soft_aes.hpp"

#include <cstring>

namespace tc::crypto {

std::string_view PrgKindName(PrgKind kind) {
  switch (kind) {
    case PrgKind::kAesNi: return "AES-NI";
    case PrgKind::kAesSoft: return "AES";
    case PrgKind::kSha256: return "SHA256";
  }
  return "?";
}

namespace {

constexpr Block128 kZeroBlock{};
constexpr Block128 kOneBlock{1};  // first byte 1, rest 0

class AesNiPrg final : public Prg {
 public:
  void Expand(const Key128& parent, Key128& left,
              Key128& right) const override {
    AesNiBlock cipher(parent);
    cipher.EncryptTwoBlocks(kZeroBlock, kOneBlock, left, right);
  }
};

class AesSoftPrg final : public Prg {
 public:
  void Expand(const Key128& parent, Key128& left,
              Key128& right) const override {
    SoftAes128 cipher(parent);
    left = cipher.EncryptBlock(kZeroBlock);
    right = cipher.EncryptBlock(kOneBlock);
  }
};

class Sha256Prg final : public Prg {
 public:
  void Expand(const Key128& parent, Key128& left,
              Key128& right) const override {
    left = Truncate(Sha256Concat(BytesView(&kLeftTag, 1), parent));
    right = Truncate(Sha256Concat(BytesView(&kRightTag, 1), parent));
  }

 private:
  static Key128 Truncate(const Sha256Digest& d) {
    Key128 k;
    std::memcpy(k.data(), d.data(), k.size());
    return k;
  }

  static constexpr uint8_t kLeftTag = 0;
  static constexpr uint8_t kRightTag = 1;
};

}  // namespace

std::unique_ptr<Prg> MakePrg(PrgKind kind) {
  switch (kind) {
    case PrgKind::kAesNi:
      if (CpuHasAesNi()) return std::make_unique<AesNiPrg>();
      return std::make_unique<AesSoftPrg>();
    case PrgKind::kAesSoft:
      return std::make_unique<AesSoftPrg>();
    case PrgKind::kSha256:
      return std::make_unique<Sha256Prg>();
  }
  return std::make_unique<AesSoftPrg>();
}

const Prg& DefaultPrg() {
  static const std::unique_ptr<Prg> prg = MakePrg(PrgKind::kAesNi);
  return *prg;
}

}  // namespace tc::crypto
