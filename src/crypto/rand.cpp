#include "crypto/rand.hpp"

#include <openssl/rand.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tc::crypto {

void RandomBytes(MutableBytesView out) {
  if (out.empty()) return;
  if (RAND_bytes(out.data(), static_cast<int>(out.size())) != 1) {
    std::fprintf(stderr, "fatal: OpenSSL RAND_bytes failed\n");
    std::abort();
  }
}

Key128 RandomKey128() {
  Key128 k;
  RandomBytes(k);
  return k;
}

uint64_t RandomU64() {
  uint64_t v;
  RandomBytes(MutableBytesView(reinterpret_cast<uint8_t*>(&v), sizeof(v)));
  return v;
}

uint64_t DeterministicRng::NextU64() {
  // splitmix64: tiny, full-period, good enough for synthetic workloads.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeterministicRng::NextBelow(uint64_t bound) {
  // Modulo bias is irrelevant for workload synthesis.
  return NextU64() % bound;
}

double DeterministicRng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double DeterministicRng::NextGaussian() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

void DeterministicRng::Fill(MutableBytesView out) {
  size_t i = 0;
  while (i < out.size()) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace tc::crypto
