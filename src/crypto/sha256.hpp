// SHA-256, HMAC-SHA256 and HKDF wrappers over OpenSSL EVP.
#pragma once

#include <array>

#include "common/bytes.hpp"
#include "common/secret.hpp"

namespace tc::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

Sha256Digest Sha256(BytesView data);

/// SHA-256 over the concatenation a || b (avoids a temporary buffer).
Sha256Digest Sha256Concat(BytesView a, BytesView b);

Sha256Digest HmacSha256(TC_SECRET BytesView key, BytesView data);

/// HKDF (RFC 5869) extract-then-expand with SHA-256.
Bytes HkdfSha256(TC_SECRET BytesView ikm, BytesView salt, BytesView info,
                 size_t length);

}  // namespace tc::crypto
