#include "crypto/heac.hpp"

#include <cassert>

namespace tc::crypto {

FieldKeys::FieldKeys(const Key128& leaf, size_t num_fields) {
  keys_.reserve(num_fields);
  AesNiBlock cipher(leaf);
  Block128 counter{};
  for (size_t f = 0; f < num_fields; ++f) {
    std::memcpy(counter.data(), &f, sizeof(f));
    keys_.push_back(Fold64(cipher.EncryptBlock(counter)));
  }
}

Result<HeacCiphertext> HeacAdd(const HeacCiphertext& a,
                               const HeacCiphertext& b) {
  HeacCiphertext out = a;
  TC_RETURN_IF_ERROR(HeacAddInPlace(out, b));
  return out;
}

Status HeacAddInPlace(HeacCiphertext& acc, const HeacCiphertext& b) {
  if (acc.fields.size() != b.fields.size()) {
    return InvalidArgument("digest field count mismatch");
  }
  if (acc.last_chunk != b.first_chunk) {
    return InvalidArgument(
        "HEAC aggregation requires contiguous chunk ranges (key canceling)");
  }
  for (size_t i = 0; i < acc.fields.size(); ++i) {
    acc.fields[i] += b.fields[i];  // wraps mod 2^64 by design
  }
  acc.last_chunk = b.last_chunk;
  return Status::Ok();
}

HeacCiphertext HeacCodec::Encrypt(std::span<const uint64_t> fields,
                                  uint64_t chunk, const Key128& leaf_i,
                                  const Key128& leaf_next) const {
  assert(fields.size() == num_fields_);
  FieldKeys ki(leaf_i, num_fields_);
  FieldKeys kn(leaf_next, num_fields_);
  HeacCiphertext c;
  c.fields.reserve(num_fields_);
  for (size_t f = 0; f < num_fields_; ++f) {
    c.fields.push_back(fields[f] + ki.key(f) - kn.key(f));
  }
  c.first_chunk = chunk;
  c.last_chunk = chunk + 1;
  return c;
}

std::vector<uint64_t> HeacCodec::Decrypt(const HeacCiphertext& c,
                                         const Key128& leaf_first,
                                         const Key128& leaf_last) const {
  assert(c.fields.size() == num_fields_);
  FieldKeys kf(leaf_first, num_fields_);
  FieldKeys kl(leaf_last, num_fields_);
  std::vector<uint64_t> m;
  m.reserve(num_fields_);
  for (size_t f = 0; f < num_fields_; ++f) {
    m.push_back(c.fields[f] - kf.key(f) + kl.key(f));
  }
  return m;
}

}  // namespace tc::crypto
