// Hybrid public-key sealing for access tokens (§3.2: "Access tokens are
// encrypted with the principal's public key (hybrid encryption) and stored
// at the server's key-store").
//
// Construction: X25519 ephemeral ECDH -> HKDF-SHA256 -> AES-128-GCM.
// Output: ephemeral_pub(32) || gcm(nonce || ct || tag).
#pragma once

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

constexpr size_t kX25519KeySize = 32;

/// A principal's long-term identity keypair. The identity provider of the
/// threat model (e.g. Keybase, §3.3) maps principal ids to public keys;
/// here the public half is passed around directly. The secret half lives in
/// a SecretBuffer: scrubbed on destruction, redacted when streamed.
struct BoxKeyPair {
  Bytes public_key;                  // 32 bytes
  TC_SECRET SecretBuffer secret_key;  // 32 bytes
};

/// Generate a fresh X25519 keypair.
BoxKeyPair GenerateBoxKeyPair();

/// Seal `plaintext` to the holder of `recipient_public`. Anyone can seal;
/// only the secret-key holder can open (sender-anonymous, like NaCl boxes).
Result<Bytes> SealToPublicKey(BytesView recipient_public, BytesView plaintext);

/// Open a sealed blob with the recipient keypair.
Result<Bytes> OpenSealed(const BoxKeyPair& recipient, BytesView sealed);

}  // namespace tc::crypto
