// Ed25519 signatures over OpenSSL EVP — the authenticity anchor for the
// integrity extension (src/integrity): data owners sign stream attestations
// (Merkle roots) so consumers can verify retrieved data against something
// the untrusted server cannot forge. The paper defers integrity/freshness
// to Verena-style frameworks (§3.3); this supplies the signature primitive.
#pragma once

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

constexpr size_t kEd25519PublicKeySize = 32;
constexpr size_t kEd25519SecretKeySize = 32;  // raw seed form
constexpr size_t kEd25519SignatureSize = 64;

/// An owner's long-term signing identity (raw 32-byte keys). The identity
/// provider of the threat model maps owner ids to these public keys, just
/// as it does for X25519 sealing keys.
struct SigningKeyPair {
  Bytes public_key;                  // 32 bytes
  TC_SECRET SecretBuffer secret_key;  // 32 bytes (seed)
};

/// Generate a fresh Ed25519 keypair.
SigningKeyPair GenerateSigningKeyPair();

/// Sign `message` with a raw 32-byte secret key. Returns a 64-byte
/// signature.
Result<Bytes> SignMessage(TC_SECRET BytesView secret_key, BytesView message);

/// Verify a signature against a raw 32-byte public key.
/// PermissionDenied on mismatch (forged/altered), InvalidArgument on
/// malformed key or signature sizes.
Status VerifySignature(BytesView public_key, BytesView message,
                       BytesView signature);

}  // namespace tc::crypto
