// Cryptographically secure randomness (OpenSSL CSPRNG) plus a deterministic
// generator for tests and reproducible workloads.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace tc::crypto {

/// 128-bit key/seed material — the node size of the GGM tree (λ = 128).
using Key128 = std::array<uint8_t, 16>;

/// Fill `out` with CSPRNG bytes. Aborts on entropy failure (unrecoverable).
void RandomBytes(MutableBytesView out);

/// Fresh random 128-bit key.
Key128 RandomKey128();

/// Fresh random uint64 (for nonces / ids).
uint64_t RandomU64();

/// Deterministic pseudo-random stream for tests and workload generation.
/// NOT cryptographically secure: splitmix64 underneath.
class DeterministicRng {
 public:
  explicit DeterministicRng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64();
  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Standard-normal via Box-Muller.
  double NextGaussian();
  void Fill(MutableBytesView out);

 private:
  uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tc::crypto
