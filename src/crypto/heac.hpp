// HEAC — Homomorphic Encryption-based Access Control (§4.2, §A.1).
//
// Castelluccia-style symmetric additive encryption over the ring Z_{2^64}
// with TimeCrypt's two extensions:
//
//  1. Key canceling (§4.2.2): chunk i is encrypted with k'_i = k_i - k_{i+1},
//     so an in-range sum over [a, b) telescopes to sum(m) + k_a - k_b and
//     decryption needs only the two *outer* keys regardless of range length.
//
//  2. GGM-derived keystream (§4.2.3): k_i comes from leaf i of a key
//     derivation tree, so time-range access is granted by sharing subtree
//     tokens rather than individual keys.
//
// A chunk digest is a small vector of uint64 fields (sum, count, sumsq,
// histogram bins...). Each field f has its own independent keystream derived
// from leaf i by one extra PRF step: k_{i,f} = fold64(AES_{leaf_i}(f)),
// where fold64 is the length-matching hash of §A.1.5 (128 -> 64 bits).
//
// All arithmetic uses native uint64 wraparound — exactly mod 2^64 (M = 2^64,
// §4.2.1: "we set M to 2^64").
#pragma once

#include <cstdint>
#include <vector>

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/aesni.hpp"
#include "crypto/ggm_tree.hpp"

namespace tc::crypto {

/// Length-matching hash (§A.1.5): XOR-fold a 128-bit PRF output to 64 bits.
/// Preserves uniformity; collision resistance is not required.
inline uint64_t Fold64(const Key128& k) {
  uint64_t lo, hi;
  static_assert(sizeof(lo) + sizeof(hi) == sizeof(Key128));
  std::memcpy(&lo, k.data(), 8);
  std::memcpy(&hi, k.data() + 8, 8);
  return lo ^ hi;
}

/// Per-field keys derived from one GGM leaf. Field f's key is
/// fold64(AES_{leaf}(f)) — one AES block op per field.
class FieldKeys {
 public:
  FieldKeys(TC_SECRET const Key128& leaf, size_t num_fields);
  FieldKeys(const FieldKeys&) = default;
  FieldKeys& operator=(const FieldKeys&) = default;
  FieldKeys(FieldKeys&&) noexcept = default;
  FieldKeys& operator=(FieldKeys&&) noexcept = default;
  ~FieldKeys() {
    SecureZero(MutableBytesView(reinterpret_cast<uint8_t*>(keys_.data()),
                                keys_.size() * sizeof(uint64_t)));
  }

  uint64_t key(size_t field) const { return keys_[field]; }
  size_t num_fields() const { return keys_.size(); }

 private:
  TC_SECRET std::vector<uint64_t> keys_;
};

/// An encrypted digest: one uint64 ciphertext per field, plus the chunk
/// index range [first, last) it aggregates. Adding two adjacent encrypted
/// digests yields the encrypted digest of the union range — this is the only
/// operation the server ever performs.
struct HeacCiphertext {
  std::vector<uint64_t> fields;
  uint64_t first_chunk = 0;  // inclusive
  uint64_t last_chunk = 0;   // exclusive

  friend bool operator==(const HeacCiphertext&,
                         const HeacCiphertext&) = default;
};

/// Homomorphic add. Ranges must be adjacent or identical-width aggregates
/// under the caller's control; the server's aggregation tree only ever adds
/// adjacent ranges. Returns error if ranges are not contiguous.
Result<HeacCiphertext> HeacAdd(const HeacCiphertext& a,
                               const HeacCiphertext& b);

/// In-place variant of HeacAdd for the index hot path (no allocation when
/// field counts match).
Status HeacAddInPlace(HeacCiphertext& acc, const HeacCiphertext& b);

/// Encrypts / decrypts digests given access to leaf keys. The key source is
/// abstract so both the owner (full GgmTree) and a consumer (TokenSet) can
/// supply keys.
class HeacCodec {
 public:
  explicit HeacCodec(size_t num_fields) : num_fields_(num_fields) {}

  size_t num_fields() const { return num_fields_; }

  /// Encrypt chunk i's digest fields: c[f] = m[f] + k_{i,f} - k_{i+1,f}.
  /// `leaf_i` and `leaf_next` are GGM leaves i and i+1.
  HeacCiphertext Encrypt(std::span<const uint64_t> fields, uint64_t chunk,
                         const Key128& leaf_i, const Key128& leaf_next) const;

  /// Decrypt an aggregate over [c.first_chunk, c.last_chunk):
  /// m[f] = c[f] - k_{first,f} + k_{last,f}.
  /// `leaf_first`/`leaf_last` are GGM leaves first_chunk and last_chunk.
  std::vector<uint64_t> Decrypt(const HeacCiphertext& c,
                                const Key128& leaf_first,
                                const Key128& leaf_last) const;

 private:
  size_t num_fields_;
};

}  // namespace tc::crypto
