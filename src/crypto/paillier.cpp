#include "crypto/paillier.hpp"

#include <openssl/bn.h>

#include <cstdio>
#include <cstdlib>

namespace tc::crypto {

namespace {
[[noreturn]] void FatalBn(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL BN %s failed\n", what);
  std::abort();
}

struct BnDeleter {
  void operator()(BIGNUM* p) const { BN_free(p); }
};
using BnPtr = std::unique_ptr<BIGNUM, BnDeleter>;

BnPtr NewBn() {
  BIGNUM* b = BN_new();
  if (b == nullptr) FatalBn("BN_new");
  return BnPtr(b);
}
}  // namespace

struct Paillier::Impl {
  BnPtr n;        // modulus
  BnPtr n2;       // n^2
  BnPtr lambda;   // lcm(p-1, q-1)
  BnPtr mu;       // (L(g^lambda mod n^2))^-1 mod n
  // CRT acceleration for decryption.
  BnPtr p2, q2;         // p^2, q^2
  BnPtr hp, hq;         // precomputed L_p/L_q inverses
  BnPtr p, q;
  BnPtr p2_inv_q2;      // p^2^{-1} mod q^2 for CRT recombination
  BN_CTX* ctx = nullptr;
  int bits = 0;

  ~Impl() {
    if (ctx != nullptr) BN_CTX_free(ctx);
  }
};

Paillier::Paillier() : impl_(std::make_unique<Impl>()) {}
Paillier::~Paillier() = default;

std::unique_ptr<Paillier> Paillier::Generate(int modulus_bits) {
  auto paillier = std::unique_ptr<Paillier>(new Paillier());
  Impl& im = *paillier->impl_;
  im.bits = modulus_bits;
  im.ctx = BN_CTX_new();
  if (im.ctx == nullptr) FatalBn("BN_CTX_new");

  im.p = NewBn();
  im.q = NewBn();
  im.n = NewBn();
  im.n2 = NewBn();
  im.lambda = NewBn();
  im.mu = NewBn();
  im.p2 = NewBn();
  im.q2 = NewBn();

  // Generate two safe-size primes p != q with p*q of modulus_bits.
  do {
    if (BN_generate_prime_ex(im.p.get(), modulus_bits / 2, 0, nullptr,
                             nullptr, nullptr) != 1 ||
        BN_generate_prime_ex(im.q.get(), modulus_bits / 2, 0, nullptr,
                             nullptr, nullptr) != 1) {
      FatalBn("prime generation");
    }
  } while (BN_cmp(im.p.get(), im.q.get()) == 0);

  BN_mul(im.n.get(), im.p.get(), im.q.get(), im.ctx);
  BN_sqr(im.n2.get(), im.n.get(), im.ctx);
  BN_sqr(im.p2.get(), im.p.get(), im.ctx);
  BN_sqr(im.q2.get(), im.q.get(), im.ctx);

  // lambda = lcm(p-1, q-1) = (p-1)(q-1) / gcd(p-1, q-1).
  BnPtr pm1 = NewBn(), qm1 = NewBn(), gcd = NewBn(), prod = NewBn();
  BN_sub(pm1.get(), im.p.get(), BN_value_one());
  BN_sub(qm1.get(), im.q.get(), BN_value_one());
  BN_gcd(gcd.get(), pm1.get(), qm1.get(), im.ctx);
  BN_mul(prod.get(), pm1.get(), qm1.get(), im.ctx);
  BN_div(im.lambda.get(), nullptr, prod.get(), gcd.get(), im.ctx);

  // mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n+1:
  // g^lambda = (1+n)^lambda = 1 + lambda*n mod n^2, so L(...) = lambda mod n.
  BnPtr lam_mod_n = NewBn();
  BN_mod(lam_mod_n.get(), im.lambda.get(), im.n.get(), im.ctx);
  if (BN_mod_inverse(im.mu.get(), lam_mod_n.get(), im.n.get(), im.ctx) ==
      nullptr) {
    FatalBn("mu inverse");
  }

  // CRT recombination constant.
  im.p2_inv_q2 = NewBn();
  if (BN_mod_inverse(im.p2_inv_q2.get(), im.p2.get(), im.q2.get(), im.ctx) ==
      nullptr) {
    FatalBn("CRT inverse");
  }
  return paillier;
}

int Paillier::modulus_bits() const { return impl_->bits; }

size_t Paillier::ciphertext_size() const {
  return static_cast<size_t>(impl_->bits) / 4;  // 2 * (bits/8)
}

Bytes Paillier::ExportPublicKey() const {
  Bytes out(static_cast<size_t>(impl_->bits) / 8);
  BN_bn2binpad(impl_->n.get(), out.data(), static_cast<int>(out.size()));
  return out;
}

Result<std::unique_ptr<Paillier>> Paillier::FromPublicKey(BytesView n_bytes) {
  if (n_bytes.empty()) return InvalidArgument("empty Paillier public key");
  auto paillier = std::unique_ptr<Paillier>(new Paillier());
  Impl& im = *paillier->impl_;
  im.bits = static_cast<int>(n_bytes.size()) * 8;
  im.ctx = BN_CTX_new();
  if (im.ctx == nullptr) FatalBn("BN_CTX_new");
  im.n = NewBn();
  im.n2 = NewBn();
  if (BN_bin2bn(n_bytes.data(), static_cast<int>(n_bytes.size()),
                im.n.get()) == nullptr) {
    return InvalidArgument("malformed Paillier public key");
  }
  BN_sqr(im.n2.get(), im.n.get(), im.ctx);
  // lambda/mu/CRT members stay null: decrypt is denied below.
  return paillier;
}

PaillierCiphertext Paillier::Encrypt(uint64_t m) const {
  Impl& im = *impl_;
  BnPtr bm = NewBn(), r = NewBn(), c = NewBn(), tmp = NewBn();
  BN_set_word(bm.get(), m);

  // r uniform in [1, n).
  do {
    BN_rand_range(r.get(), im.n.get());
  } while (BN_is_zero(r.get()));

  // c = (1 + m*n) * r^n mod n^2.
  BN_mod_mul(tmp.get(), bm.get(), im.n.get(), im.n2.get(), im.ctx);
  BN_add_word(tmp.get(), 1);
  BnPtr rn = NewBn();
  BN_mod_exp(rn.get(), r.get(), im.n.get(), im.n2.get(), im.ctx);
  BN_mod_mul(c.get(), tmp.get(), rn.get(), im.n2.get(), im.ctx);

  PaillierCiphertext out(ciphertext_size());
  BN_bn2binpad(c.get(), out.data(), static_cast<int>(out.size()));
  return out;
}

PaillierCiphertext Paillier::Add(const PaillierCiphertext& a,
                                 const PaillierCiphertext& b) const {
  Impl& im = *impl_;
  BnPtr ba = NewBn(), bb = NewBn(), c = NewBn();
  BN_bin2bn(a.data(), static_cast<int>(a.size()), ba.get());
  BN_bin2bn(b.data(), static_cast<int>(b.size()), bb.get());
  BN_mod_mul(c.get(), ba.get(), bb.get(), im.n2.get(), im.ctx);
  PaillierCiphertext out(ciphertext_size());
  BN_bn2binpad(c.get(), out.data(), static_cast<int>(out.size()));
  return out;
}

Result<uint64_t> Paillier::Decrypt(const PaillierCiphertext& c) const {
  Impl& im = *impl_;
  if (!im.lambda) {
    return PermissionDenied("public-only Paillier instance cannot decrypt");
  }
  BnPtr bc = NewBn(), m = NewBn();
  BN_bin2bn(c.data(), static_cast<int>(c.size()), bc.get());

  // Standard (non-CRT-split) decryption: m = L(c^lambda mod n^2) * mu mod n.
  // BN_mod_exp with a 3072-bit exponent dominates; CRT would give ~4x but
  // correctness and clarity win here — the strawman is slow either way.
  BnPtr u = NewBn();
  BN_mod_exp(u.get(), bc.get(), im.lambda.get(), im.n2.get(), im.ctx);
  // L(u) = (u - 1) / n.
  BN_sub_word(u.get(), 1);
  BnPtr l = NewBn();
  BN_div(l.get(), nullptr, u.get(), im.n.get(), im.ctx);
  BN_mod_mul(m.get(), l.get(), im.mu.get(), im.n.get(), im.ctx);

  // Aggregates fit in 64 bits by TimeCrypt's design (M = 2^64).
  if (BN_num_bits(m.get()) > 64) {
    return OutOfRange("Paillier plaintext exceeds 64 bits");
  }
  return static_cast<uint64_t>(BN_get_word(m.get()));
}

}  // namespace tc::crypto
