#include "crypto/aes_gcm.hpp"

#include <openssl/evp.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "crypto/evp_ctx.hpp"
#include "crypto/sha256.hpp"

namespace tc::crypto {

namespace {
[[noreturn]] void FatalOpenSsl(const char* what) {
  std::fprintf(stderr, "fatal: OpenSSL %s failed\n", what);
  std::abort();
}

EVP_CIPHER_CTX* ThreadCtx() {
  return internal::ThreadLocalCtx<EVP_CIPHER_CTX, EVP_CIPHER_CTX_new,
                                  EVP_CIPHER_CTX_free>();
}
}  // namespace

Bytes GcmSeal(const Key128& key, BytesView plaintext, BytesView aad) {
  EVP_CIPHER_CTX* ctx = ThreadCtx();
  Bytes out(kGcmNonceSize + plaintext.size() + kGcmTagSize);
  RandomBytes(MutableBytesView(out.data(), kGcmNonceSize));

  if (EVP_EncryptInit_ex(ctx, EVP_aes_128_gcm(), nullptr, key.data(),
                         out.data()) != 1) {
    FatalOpenSsl("EncryptInit(gcm)");
  }
  int len = 0;
  if (!aad.empty() &&
      EVP_EncryptUpdate(ctx, nullptr, &len, aad.data(),
                        static_cast<int>(aad.size())) != 1) {
    FatalOpenSsl("EncryptUpdate(aad)");
  }
  if (!plaintext.empty() &&
      EVP_EncryptUpdate(ctx, out.data() + kGcmNonceSize, &len,
                        plaintext.data(),
                        static_cast<int>(plaintext.size())) != 1) {
    FatalOpenSsl("EncryptUpdate");
  }
  int final_len = 0;
  if (EVP_EncryptFinal_ex(ctx, out.data() + kGcmNonceSize + len,
                          &final_len) != 1) {
    FatalOpenSsl("EncryptFinal");
  }
  if (EVP_CIPHER_CTX_ctrl(ctx, EVP_CTRL_GCM_GET_TAG, kGcmTagSize,
                          out.data() + kGcmNonceSize + plaintext.size()) !=
      1) {
    FatalOpenSsl("GET_TAG");
  }
  return out;
}

Result<Bytes> GcmOpen(const Key128& key, BytesView sealed, BytesView aad) {
  if (sealed.size() < kGcmNonceSize + kGcmTagSize) {
    return DataLoss("sealed blob too short");
  }
  EVP_CIPHER_CTX* ctx = ThreadCtx();
  const uint8_t* nonce = sealed.data();
  const uint8_t* ct = sealed.data() + kGcmNonceSize;
  size_t ct_len = sealed.size() - kGcmNonceSize - kGcmTagSize;
  const uint8_t* tag = ct + ct_len;

  if (EVP_DecryptInit_ex(ctx, EVP_aes_128_gcm(), nullptr, key.data(),
                         nonce) != 1) {
    FatalOpenSsl("DecryptInit(gcm)");
  }
  int len = 0;
  if (!aad.empty() &&
      EVP_DecryptUpdate(ctx, nullptr, &len, aad.data(),
                        static_cast<int>(aad.size())) != 1) {
    FatalOpenSsl("DecryptUpdate(aad)");
  }
  Bytes plaintext(ct_len);
  if (ct_len > 0 && EVP_DecryptUpdate(ctx, plaintext.data(), &len, ct,
                                      static_cast<int>(ct_len)) != 1) {
    return DataLoss("GCM decryption failed");
  }
  if (EVP_CIPHER_CTX_ctrl(ctx, EVP_CTRL_GCM_SET_TAG, kGcmTagSize,
                          const_cast<uint8_t*>(tag)) != 1) {
    FatalOpenSsl("SET_TAG");
  }
  int final_len = 0;
  if (EVP_DecryptFinal_ex(ctx, plaintext.data() + len, &final_len) != 1) {
    return DataLoss("GCM authentication failed (tampered or wrong key)");
  }
  return plaintext;
}

Key128 ChunkPayloadKey(const Key128& leaf_i, const Key128& leaf_next) {
  // Component-wise difference of the two leaves (two uint64 lanes), hashed.
  uint64_t a[2], b[2], d[2];
  std::memcpy(a, leaf_i.data(), 16);
  std::memcpy(b, leaf_next.data(), 16);
  d[0] = a[0] - b[0];
  d[1] = a[1] - b[1];
  Sha256Digest h = Sha256(BytesView(reinterpret_cast<uint8_t*>(d), 16));
  Key128 key;
  std::memcpy(key.data(), h.data(), 16);
  return key;
}

}  // namespace tc::crypto
