#include "crypto/key_regression.hpp"

#include <cmath>
#include <cstring>

#include "crypto/sha256.hpp"

namespace tc::crypto {

namespace {
Key128 Msb128(const Sha256Digest& d) {
  Key128 k;
  std::memcpy(k.data(), d.data(), 16);
  return k;
}
Key128 Lsb128(const Sha256Digest& d) {
  Key128 k;
  std::memcpy(k.data(), d.data() + 16, 16);
  return k;
}
}  // namespace

Key128 HashChain::StepDown(const Key128& state) {
  return Msb128(Sha256(state));
}

Key128 HashChain::KeyOf(const Key128& state) {
  return Lsb128(Sha256(state));
}

HashChain::HashChain(Key128 seed, uint64_t length)
    : length_(length), seed_(seed) {
  stride_ = static_cast<uint64_t>(std::sqrt(static_cast<double>(length)));
  if (stride_ == 0) stride_ = 1;
  // Generate from the top (index length-1 = seed) down to 0, recording
  // every stride-th state. checkpoints_[j] holds state j*stride_.
  size_t num_cp = static_cast<size_t>((length - 1) / stride_) + 1;
  checkpoints_.assign(num_cp, Key128{});
  Key128 cur = seed;
  for (uint64_t i = length; i-- > 0;) {
    if (i % stride_ == 0) checkpoints_[i / stride_] = cur;
    if (i > 0) cur = StepDown(cur);
  }
  SecureZero(cur);
}

Result<Key128> HashChain::StateAt(uint64_t i) const {
  if (i >= length_) return OutOfRange("hash chain index out of range");
  // Start from the smallest anchor at-or-above i and walk down. Anchors are
  // the checkpoints plus the seed (state length-1), so the walk is at most
  // stride_ steps: O(sqrt(n)).
  uint64_t cp = (i + stride_ - 1) / stride_;  // ceil(i / stride)
  uint64_t anchor_index;
  Key128 cur;
  if (cp < checkpoints_.size()) {
    anchor_index = cp * stride_;
    cur = checkpoints_[cp];
  } else {
    anchor_index = length_ - 1;
    cur = seed_;
  }
  for (uint64_t step = anchor_index; step > i; --step) cur = StepDown(cur);
  return cur;
}

Result<Key128> HashChain::Walk(const KeyRegressionState& from,
                               uint64_t target_index) {
  if (target_index > from.index) {
    return PermissionDenied("hash chain cannot be walked forward");
  }
  Key128 cur = from.state;
  for (uint64_t i = from.index; i > target_index; --i) cur = StepDown(cur);
  return cur;
}

Result<Key128> DualKeyRegressionView::DeriveKey(uint64_t j) const {
  if (j > primary_.index || j < secondary_.index) {
    return PermissionDenied("key index outside shared dual-regression range");
  }
  TC_ASSIGN_OR_RETURN(Key128 s1, HashChain::Walk(primary_, j));
  // The secondary chain runs in the opposite direction: walking "down" its
  // chain moves to *higher* key indices. Translate: secondary state for key
  // index j lives at chain position (length-independent) — we store the
  // secondary state indexed by key index directly and walk the chain by
  // (j - secondary_.index) steps.
  KeyRegressionState sec{secondary_.state,
                         /*index as walkable distance=*/secondary_.index};
  // Walk forward in key-index space = step down the secondary chain.
  Key128 s2 = sec.state;
  for (uint64_t i = secondary_.index; i < j; ++i) s2 = HashChain::StepDown(s2);
  Key128 mixed;
  for (size_t b = 0; b < mixed.size(); ++b) mixed[b] = s1[b] ^ s2[b];
  Key128 out = HashChain::KeyOf(mixed);
  SecureZero(s1);
  SecureZero(s2);
  SecureZero(mixed);
  return out;
}

DualKeyRegression::DualKeyRegression(Key128 primary_seed, Key128 secondary_seed,
                                     uint64_t length)
    : length_(length),
      primary_(primary_seed, length),
      secondary_(secondary_seed, length) {}

Result<Key128> DualKeyRegression::DeriveKey(uint64_t j) const {
  if (j >= length_) return OutOfRange("key index out of range");
  TC_ASSIGN_OR_RETURN(Key128 s1, primary_.StateAt(j));
  // Secondary chain consumed in reverse: key index j uses secondary state
  // at chain position length-1-j, i.e. walking down the secondary chain
  // moves forward in key-index space.
  TC_ASSIGN_OR_RETURN(Key128 s2, secondary_.StateAt(length_ - 1 - j));
  Key128 mixed;
  for (size_t b = 0; b < mixed.size(); ++b) mixed[b] = s1[b] ^ s2[b];
  Key128 out = HashChain::KeyOf(mixed);
  SecureZero(s1);
  SecureZero(s2);
  SecureZero(mixed);
  return out;
}

Result<DualKeyRegressionView> DualKeyRegression::Share(uint64_t lower,
                                                       uint64_t upper) const {
  if (lower > upper) return InvalidArgument("lower > upper in share range");
  if (upper >= length_) return OutOfRange("share range exceeds chain length");
  TC_ASSIGN_OR_RETURN(Key128 s1, primary_.StateAt(upper));
  TC_ASSIGN_OR_RETURN(Key128 s2, secondary_.StateAt(length_ - 1 - lower));
  DualKeyRegressionView view(KeyRegressionState{s1, upper},
                             KeyRegressionState{s2, lower});
  SecureZero(s1);
  SecureZero(s2);
  return view;
}

}  // namespace tc::crypto
