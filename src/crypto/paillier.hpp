// Paillier additively homomorphic public-key encryption — one of the two
// strawman digest ciphers the paper compares against (§5, §6; Java
// BigInteger implementation there, OpenSSL BIGNUM here).
//
// Standard scheme with the g = n+1 optimization:
//   Enc(m)  = (1 + m*n) * r^n mod n^2
//   Add     = ciphertext multiplication mod n^2
//   Dec(c)  = L(c^lambda mod n^2) * mu mod n, accelerated with CRT.
#pragma once

#include <memory>

#include "common/status.hpp"
#include "common/bytes.hpp"

namespace tc::crypto {

/// Paillier ciphertext: big-endian bignum, 2*modulus_bits wide.
using PaillierCiphertext = Bytes;

class Paillier {
 public:
  /// Generate a fresh keypair. 3072-bit n gives 128-bit security (§6 setup);
  /// 1024-bit corresponds to the 80-bit IoT row of Table 3.
  static std::unique_ptr<Paillier> Generate(int modulus_bits = 3072);

  /// Public half (the modulus n, big-endian). Enough for Encrypt/Add.
  Bytes ExportPublicKey() const;

  /// Public-only instance (server side): Encrypt/Add work, Decrypt is
  /// PermissionDenied.
  static Result<std::unique_ptr<Paillier>> FromPublicKey(BytesView n_bytes);

  ~Paillier();
  Paillier(const Paillier&) = delete;
  Paillier& operator=(const Paillier&) = delete;

  int modulus_bits() const;
  /// Serialized ciphertext size in bytes (2 * modulus bytes).
  size_t ciphertext_size() const;

  /// Encrypt a 64-bit value (message space is Z_n, vastly larger).
  PaillierCiphertext Encrypt(uint64_t m) const;

  /// Homomorphic addition: c1 * c2 mod n^2.
  PaillierCiphertext Add(const PaillierCiphertext& a,
                         const PaillierCiphertext& b) const;

  /// Decrypt; result reduced to uint64 (aggregates in TimeCrypt's digest
  /// fields are 64-bit by construction).
  Result<uint64_t> Decrypt(const PaillierCiphertext& c) const;

 private:
  Paillier();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tc::crypto
