// Length-doubling pseudorandom generators G(x) = G0(x) || G1(x) used to
// build the GGM key-derivation tree (§4.2.3). Three interchangeable
// constructions, matching the paper's Fig 6 comparison:
//   - AES-NI:      G0(x) = AES_x(0), G1(x) = AES_x(1)  (default, fastest)
//   - AES (soft):  same construction on the portable software AES
//   - SHA-256:     G0(x) = H(0 || x), G1(x) = H(1 || x) truncated to 128 bit
#pragma once

#include <memory>
#include <string_view>

#include "common/secret.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

enum class PrgKind {
  kAesNi,    // hardware AES (production default)
  kAesSoft,  // portable software AES (Fig 6 "AES" series)
  kSha256,   // hash-based construction
};

std::string_view PrgKindName(PrgKind kind);

/// A length-doubling PRG. Implementations must be stateless and
/// thread-compatible: Expand may be called concurrently from any thread.
/// Implementations key a block cipher with `parent` per call; the cipher
/// types scrub their expanded key schedules on destruction, so no copy of
/// the parent key outlives the call.
class Prg {
 public:
  virtual ~Prg() = default;

  /// Expand a 128-bit node into its two 128-bit children.
  virtual void Expand(TC_SECRET const Key128& parent, Key128& left,
                      Key128& right) const = 0;

  /// Derive only one child (some callers walk a single path).
  virtual Key128 ExpandOne(TC_SECRET const Key128& parent,
                           bool right_child) const {
    Key128 l, r;
    Expand(parent, l, r);
    SecureZero(right_child ? l : r);
    return right_child ? r : l;
  }
};

/// Create a PRG of the given kind. kAesNi silently falls back to the
/// software implementation when the CPU lacks AES-NI.
std::unique_ptr<Prg> MakePrg(PrgKind kind);

/// Process-wide default PRG (AES-NI). Never null.
const Prg& DefaultPrg();

}  // namespace tc::crypto
