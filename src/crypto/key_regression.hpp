// Single and dual key regression (§4.4.2, §A.2): hash-chain constructions
// for distributing the *resolution keystreams* that protect outer keys.
//
// Single key regression: states s_n ... s_0 form a hash chain computed in
// reverse (s_{i-1} = MSB(G(s_i))); holding s_i yields keys k_j for all
// j <= i but nothing newer.
//
// Dual key regression adds a lower bound: a second chain consumed in the
// opposite direction. Key j = LSB(G(s1_j XOR s2_j)); holding (s1_i, s2_j)
// with j <= i yields exactly keys j..i.
//
// G here is SHA-256: 32 bytes out = 16-byte next state (MSB) || 16-byte key
// material (LSB), matching the paper's G : {0,1}^λ -> {0,1}^{λ+l}.
//
// Enumerating state t from an anchor state requires walking the chain;
// the owner keeps √n-spaced checkpoints so any state costs O(√n) hashes
// (the paper's §6.2 bound).
#pragma once

#include <cstdint>
#include <vector>

#include "common/secret.hpp"
#include "common/status.hpp"
#include "crypto/rand.hpp"

namespace tc::crypto {

/// Forward direction of chain consumption relative to generation.
struct KeyRegressionState {
  KeyRegressionState() = default;
  KeyRegressionState(const Key128& state, uint64_t index)
      : state(state), index(index) {}
  KeyRegressionState(const KeyRegressionState&) = default;
  KeyRegressionState& operator=(const KeyRegressionState&) = default;
  KeyRegressionState(KeyRegressionState&&) noexcept = default;
  KeyRegressionState& operator=(KeyRegressionState&&) noexcept = default;
  ~KeyRegressionState() { SecureZero(state); }

  TC_SECRET Key128 state{};
  uint64_t index = 0;
};

/// One hash chain of `length` states with owner-side checkpoints.
/// Generation order is reverse of disclosure order: the chain is generated
/// from seed = state[length-1] down to state[0], and disclosing state[i]
/// reveals states 0..i.
class HashChain {
 public:
  /// Builds checkpoints spaced ~sqrt(length) apart; O(length) once.
  HashChain(Key128 seed, uint64_t length);
  HashChain(const HashChain&) = default;
  HashChain& operator=(const HashChain&) = default;
  HashChain(HashChain&&) noexcept = default;
  HashChain& operator=(HashChain&&) noexcept = default;
  ~HashChain() {
    SecureZero(seed_);
    for (auto& cp : checkpoints_) SecureZero(cp);
  }

  uint64_t length() const { return length_; }

  /// State i (owner-side, checkpoint-accelerated: O(sqrt(n)) hashes).
  Result<Key128> StateAt(uint64_t i) const;

  /// Walk from a disclosed state down to an earlier one (consumer-side).
  /// steps = from.index - target_index hashes.
  static Result<Key128> Walk(const KeyRegressionState& from,
                             uint64_t target_index);

  /// The hash-chain step: next_lower_state = MSB128(SHA256(state)).
  static Key128 StepDown(const Key128& state);

  /// Key material of a state: LSB128(SHA256(state)).
  static Key128 KeyOf(const Key128& state);

 private:
  uint64_t length_;
  TC_SECRET Key128 seed_;  // state at index length-1 (the top anchor)
  uint64_t stride_;
  // checkpoints_[j] = state at j*stride_ — every entry is chain state, i.e.
  // key material; the destructor scrubs the lot.
  TC_SECRET std::vector<Key128> checkpoints_;
};

/// A consumer's view of a dual key regression interval: can derive keys
/// k_j for lower <= j <= upper only.
class DualKeyRegressionView {
 public:
  DualKeyRegressionView(KeyRegressionState primary,
                        KeyRegressionState secondary)
      : primary_(primary), secondary_(secondary) {}

  /// [lower, upper] interval this view can derive.
  uint64_t lower() const { return secondary_.index; }
  uint64_t upper() const { return primary_.index; }

  /// Derive key k_j = LSB(G(s1_j xor s2_j)); PermissionDenied outside the
  /// interval (outside keys are computationally unreachable).
  Result<Key128> DeriveKey(uint64_t j) const;

  /// Raw token states (for embedding in a serialized grant).
  const Key128& primary_state() const { return primary_.state; }
  const Key128& secondary_state() const { return secondary_.state; }

 private:
  KeyRegressionState primary_;    // discloses indices <= primary_.index
  KeyRegressionState secondary_;  // discloses indices >= secondary_.index
};

/// Owner side of a dual key regression (two chains + checkpoints).
class DualKeyRegression {
 public:
  DualKeyRegression(Key128 primary_seed, Key128 secondary_seed,
                    uint64_t length);

  uint64_t length() const { return length_; }

  /// Key k_j (owner can compute any key).
  Result<Key128> DeriveKey(uint64_t j) const;

  /// Grant the interval [lower, upper]: tokens (s1_upper, s2_lower).
  Result<DualKeyRegressionView> Share(uint64_t lower, uint64_t upper) const;

 private:
  uint64_t length_;
  HashChain primary_;    // consumed forward: state i discloses <= i
  HashChain secondary_;  // generated forward, so state i discloses >= i
};

}  // namespace tc::crypto
