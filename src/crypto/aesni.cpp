#include "crypto/aesni.hpp"

#include <cpuid.h>
#include <wmmintrin.h>

#include <cstring>

namespace tc::crypto {

bool CpuHasAesNi() {
  // CPUID is serializing and, under virtualization, a VM exit — ~10 µs per
  // call on some hypervisors. MakePrg() probes this on every construction
  // (e.g. each keystream re-anchor), so cache the answer once.
  static const bool has_aesni = [] {
    unsigned int eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
    return (ecx & bit_AES) != 0;
  }();
  return has_aesni;
}

namespace {

// One step of the AES-128 key schedule using AESKEYGENASSIST.
template <int Rcon>
inline __m128i ExpandStep(__m128i key) {
  __m128i tmp = _mm_aeskeygenassist_si128(key, Rcon);
  tmp = _mm_shuffle_epi32(tmp, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, tmp);
}

}  // namespace

AesNiBlock::AesNiBlock(const Key128& key) {
  __m128i rk[11];
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key.data()));
  rk[1] = ExpandStep<0x01>(rk[0]);
  rk[2] = ExpandStep<0x02>(rk[1]);
  rk[3] = ExpandStep<0x04>(rk[2]);
  rk[4] = ExpandStep<0x08>(rk[3]);
  rk[5] = ExpandStep<0x10>(rk[4]);
  rk[6] = ExpandStep<0x20>(rk[5]);
  rk[7] = ExpandStep<0x40>(rk[6]);
  rk[8] = ExpandStep<0x80>(rk[7]);
  rk[9] = ExpandStep<0x1b>(rk[8]);
  rk[10] = ExpandStep<0x36>(rk[9]);
  std::memcpy(round_keys_.data(), rk, sizeof(rk));
}

Block128 AesNiBlock::EncryptBlock(const Block128& plaintext) const {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys_.data());
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(plaintext.data()));
  b = _mm_xor_si128(b, _mm_load_si128(&rk[0]));
  for (int i = 1; i < 10; ++i) b = _mm_aesenc_si128(b, _mm_load_si128(&rk[i]));
  b = _mm_aesenclast_si128(b, _mm_load_si128(&rk[10]));
  Block128 out;
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), b);
  return out;
}

void AesNiBlock::EncryptTwoBlocks(const Block128& in0, const Block128& in1,
                                  Block128& out0, Block128& out1) const {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys_.data());
  __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in0.data()));
  __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in1.data()));
  __m128i k = _mm_load_si128(&rk[0]);
  b0 = _mm_xor_si128(b0, k);
  b1 = _mm_xor_si128(b1, k);
  for (int i = 1; i < 10; ++i) {
    k = _mm_load_si128(&rk[i]);
    b0 = _mm_aesenc_si128(b0, k);
    b1 = _mm_aesenc_si128(b1, k);
  }
  k = _mm_load_si128(&rk[10]);
  b0 = _mm_aesenclast_si128(b0, k);
  b1 = _mm_aesenclast_si128(b1, k);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out0.data()), b0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out1.data()), b1);
}

}  // namespace tc::crypto
