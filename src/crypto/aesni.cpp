#include "crypto/aesni.hpp"

#include <cstdlib>
#include <cstring>

// The hardware path needs both x86 and a translation unit compiled with
// -maes (the build system sets that only where supported). Everything else
// gets the portable fallback at the bottom of this file; runtime dispatch in
// MakePrg() keeps callers off AesNiBlock when CpuHasAesNi() is false.
#if defined(__AES__) && (defined(__x86_64__) || defined(__i386__))
#define TC_AESNI_COMPILED 1
#include <cpuid.h>
#include <wmmintrin.h>
#endif

namespace tc::crypto {

namespace {

// Operators can force the software dispatch path (e.g. to exercise the
// fallback on AES-NI hardware, or to sidestep a hypervisor CPUID quirk).
bool AesNiDisabledByEnv() {
  const char* v = std::getenv("TC_DISABLE_AESNI");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

#if defined(TC_AESNI_COMPILED)

bool CpuHasAesNi() {
  // CPUID is serializing and, under virtualization, a VM exit — ~10 µs per
  // call on some hypervisors. MakePrg() probes this on every construction
  // (e.g. each keystream re-anchor), so cache the answer once.
  static const bool has_aesni = [] {
    if (AesNiDisabledByEnv()) return false;
    unsigned int eax, ebx, ecx, edx;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
    return (ecx & bit_AES) != 0;
  }();
  return has_aesni;
}

namespace {

// One step of the AES-128 key schedule using AESKEYGENASSIST.
template <int Rcon>
inline __m128i ExpandStep(__m128i key) {
  __m128i tmp = _mm_aeskeygenassist_si128(key, Rcon);
  tmp = _mm_shuffle_epi32(tmp, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, tmp);
}

}  // namespace

AesNiBlock::AesNiBlock(const Key128& key) {
  __m128i rk[11];
  rk[0] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key.data()));
  rk[1] = ExpandStep<0x01>(rk[0]);
  rk[2] = ExpandStep<0x02>(rk[1]);
  rk[3] = ExpandStep<0x04>(rk[2]);
  rk[4] = ExpandStep<0x08>(rk[3]);
  rk[5] = ExpandStep<0x10>(rk[4]);
  rk[6] = ExpandStep<0x20>(rk[5]);
  rk[7] = ExpandStep<0x40>(rk[6]);
  rk[8] = ExpandStep<0x80>(rk[7]);
  rk[9] = ExpandStep<0x1b>(rk[8]);
  rk[10] = ExpandStep<0x36>(rk[9]);
  std::memcpy(round_keys_.data(), rk, sizeof(rk));
}

Block128 AesNiBlock::EncryptBlock(const Block128& plaintext) const {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys_.data());
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(plaintext.data()));
  b = _mm_xor_si128(b, _mm_load_si128(&rk[0]));
  for (int i = 1; i < 10; ++i) b = _mm_aesenc_si128(b, _mm_load_si128(&rk[i]));
  b = _mm_aesenclast_si128(b, _mm_load_si128(&rk[10]));
  Block128 out;
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.data()), b);
  return out;
}

void AesNiBlock::EncryptTwoBlocks(const Block128& in0, const Block128& in1,
                                  Block128& out0, Block128& out1) const {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys_.data());
  __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in0.data()));
  __m128i b1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in1.data()));
  __m128i k = _mm_load_si128(&rk[0]);
  b0 = _mm_xor_si128(b0, k);
  b1 = _mm_xor_si128(b1, k);
  for (int i = 1; i < 10; ++i) {
    k = _mm_load_si128(&rk[i]);
    b0 = _mm_aesenc_si128(b0, k);
    b1 = _mm_aesenc_si128(b1, k);
  }
  k = _mm_load_si128(&rk[10]);
  b0 = _mm_aesenclast_si128(b0, k);
  b1 = _mm_aesenclast_si128(b1, k);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out0.data()), b0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out1.data()), b1);
}

#else  // !TC_AESNI_COMPILED — portable fallback

bool CpuHasAesNi() {
  (void)AesNiDisabledByEnv();  // keep the helper referenced on all paths
  return false;
}

// Without AES-NI codegen the class delegates to the portable implementation.
// CpuHasAesNi() is false here so the PRG dispatch never puts AesNiBlock on a
// hot path; the delegate only runs if someone constructs it directly.
AesNiBlock::AesNiBlock(const Key128& key) {
  std::memcpy(round_keys_.data(), key.data(), key.size());
}

Block128 AesNiBlock::EncryptBlock(const Block128& plaintext) const {
  Key128 key;
  std::memcpy(key.data(), round_keys_.data(), key.size());
  return SoftAes128(key).EncryptBlock(plaintext);
}

void AesNiBlock::EncryptTwoBlocks(const Block128& in0, const Block128& in1,
                                  Block128& out0, Block128& out1) const {
  Key128 key;
  std::memcpy(key.data(), round_keys_.data(), key.size());
  SoftAes128 cipher(key);
  out0 = cipher.EncryptBlock(in0);
  out1 = cipher.EncryptBlock(in1);
}

#endif  // TC_AESNI_COMPILED

}  // namespace tc::crypto
