// Digest cipher backends: how digest fields are protected inside the index.
//
// The aggregation tree (agg_tree.hpp) is generic over this interface, which
// lets the benchmarks run the identical index code over:
//   - Plaintext   (the paper's insecure baseline)
//   - HEAC        (TimeCrypt)
//   - Paillier    (strawman #1)
//   - EC-ElGamal  (strawman #2)
//
// Server-side the index only needs Add() over opaque fixed-size blobs;
// Encrypt/Decrypt live on the client side of the deployment but are exposed
// here so microbenchmarks (Tables 2-3, Fig 5) can exercise each scheme in
// isolation.
#pragma once

#include <memory>
#include <string_view>

#include "common/status.hpp"
#include "crypto/ec_elgamal.hpp"
#include "crypto/ggm_tree.hpp"
#include "crypto/paillier.hpp"

namespace tc::index {

class DigestCipher {
 public:
  virtual ~DigestCipher() = default;

  virtual std::string_view name() const = 0;
  virtual size_t num_fields() const = 0;

  /// Serialized size of one encrypted digest blob (fixed per backend —
  /// this is the ciphertext-expansion column of Table 2).
  virtual size_t blob_size() const = 0;

  /// Encrypt chunk `index`'s digest fields into a blob.
  virtual Result<Bytes> Encrypt(std::span<const uint64_t> fields,
                                uint64_t index) const = 0;

  /// acc += other (homomorphic). Blobs must be exactly blob_size(); for
  /// HEAC the tree guarantees the contiguity precondition by construction
  /// (it always folds adjacent ranges left-to-right).
  virtual Status Add(std::span<uint8_t> acc, BytesView other) const = 0;

  /// Decrypt an aggregate blob covering chunks [first, last).
  virtual Result<std::vector<uint64_t>> Decrypt(BytesView blob,
                                                uint64_t first,
                                                uint64_t last) const = 0;

  /// An all-zero aggregate blob (additive identity), used as accumulator
  /// seed by backends where one exists; HEAC/strawman backends start from
  /// the first real operand instead.
  virtual Bytes ZeroBlob() const;
};

/// Insecure baseline: fields stored as little-endian uint64.
std::unique_ptr<DigestCipher> MakePlainCipher(size_t num_fields);

/// TimeCrypt's HEAC over a GGM keystream. The cipher shares ownership of
/// the key tree (the data-owner configuration; consumers decrypt through
/// TokenSet-derived leaves via client::Consumer instead).
std::unique_ptr<DigestCipher> MakeHeacCipher(
    size_t num_fields, std::shared_ptr<const crypto::GgmTree> tree);

/// Paillier strawman. Shares the keypair.
std::unique_ptr<DigestCipher> MakePaillierCipher(
    size_t num_fields, std::shared_ptr<const crypto::Paillier> paillier);

/// EC-ElGamal strawman. Shares the keypair.
std::unique_ptr<DigestCipher> MakeEcElGamalCipher(
    size_t num_fields, std::shared_ptr<const crypto::EcElGamal> eg,
    uint32_t dlog_table_bits = 21);

}  // namespace tc::index
