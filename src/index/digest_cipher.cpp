#include "index/digest_cipher.hpp"

#include <cstring>

#include "crypto/heac.hpp"

namespace tc::index {

Bytes DigestCipher::ZeroBlob() const { return Bytes(blob_size(), 0); }

namespace {

// ---------------------------------------------------------------- plaintext

class PlainCipher final : public DigestCipher {
 public:
  explicit PlainCipher(size_t num_fields) : num_fields_(num_fields) {}

  std::string_view name() const override { return "Plaintext"; }
  size_t num_fields() const override { return num_fields_; }
  size_t blob_size() const override { return num_fields_ * 8; }

  Result<Bytes> Encrypt(std::span<const uint64_t> fields,
                        uint64_t /*index*/) const override {
    if (fields.size() != num_fields_) {
      return InvalidArgument("field count mismatch");
    }
    Bytes blob(blob_size());
    std::memcpy(blob.data(), fields.data(), blob.size());
    return blob;
  }

  Status Add(std::span<uint8_t> acc, BytesView other) const override {
    if (acc.size() != blob_size() || other.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    for (size_t f = 0; f < num_fields_; ++f) {
      uint64_t a, b;
      std::memcpy(&a, acc.data() + f * 8, 8);
      std::memcpy(&b, other.data() + f * 8, 8);
      a += b;
      std::memcpy(acc.data() + f * 8, &a, 8);
    }
    return Status::Ok();
  }

  Result<std::vector<uint64_t>> Decrypt(BytesView blob, uint64_t /*first*/,
                                        uint64_t /*last*/) const override {
    if (blob.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    std::vector<uint64_t> fields(num_fields_);
    std::memcpy(fields.data(), blob.data(), blob.size());
    return fields;
  }

 private:
  size_t num_fields_;
};

// --------------------------------------------------------------------- HEAC

class HeacCipher final : public DigestCipher {
 public:
  HeacCipher(size_t num_fields, std::shared_ptr<const crypto::GgmTree> tree)
      : num_fields_(num_fields), tree_(std::move(tree)), codec_(num_fields) {}

  std::string_view name() const override { return "TimeCrypt"; }
  size_t num_fields() const override { return num_fields_; }
  // No ciphertext expansion: 8 bytes per field, same as plaintext (§6.1).
  size_t blob_size() const override { return num_fields_ * 8; }

  Result<Bytes> Encrypt(std::span<const uint64_t> fields,
                        uint64_t index) const override {
    if (fields.size() != num_fields_) {
      return InvalidArgument("field count mismatch");
    }
    TC_ASSIGN_OR_RETURN(crypto::Key128 leaf_i, tree_->DeriveLeaf(index));
    TC_ASSIGN_OR_RETURN(crypto::Key128 leaf_n, tree_->DeriveLeaf(index + 1));
    crypto::HeacCiphertext c = codec_.Encrypt(fields, index, leaf_i, leaf_n);
    Bytes blob(blob_size());
    std::memcpy(blob.data(), c.fields.data(), blob.size());
    return blob;
  }

  Status Add(std::span<uint8_t> acc, BytesView other) const override {
    if (acc.size() != blob_size() || other.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    // Identical to plaintext addition — this is the whole point of HEAC
    // (Table 2 "Micro ADD": 1 ns, same as plaintext).
    for (size_t f = 0; f < num_fields_; ++f) {
      uint64_t a, b;
      std::memcpy(&a, acc.data() + f * 8, 8);
      std::memcpy(&b, other.data() + f * 8, 8);
      a += b;
      std::memcpy(acc.data() + f * 8, &a, 8);
    }
    return Status::Ok();
  }

  Result<std::vector<uint64_t>> Decrypt(BytesView blob, uint64_t first,
                                        uint64_t last) const override {
    if (blob.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    crypto::HeacCiphertext c;
    c.fields.resize(num_fields_);
    std::memcpy(c.fields.data(), blob.data(), blob.size());
    c.first_chunk = first;
    c.last_chunk = last;
    TC_ASSIGN_OR_RETURN(crypto::Key128 leaf_f, tree_->DeriveLeaf(first));
    TC_ASSIGN_OR_RETURN(crypto::Key128 leaf_l, tree_->DeriveLeaf(last));
    return codec_.Decrypt(c, leaf_f, leaf_l);
  }

 private:
  size_t num_fields_;
  std::shared_ptr<const crypto::GgmTree> tree_;
  crypto::HeacCodec codec_;
};

// ----------------------------------------------------------------- Paillier

class PaillierCipher final : public DigestCipher {
 public:
  PaillierCipher(size_t num_fields,
                 std::shared_ptr<const crypto::Paillier> paillier)
      : num_fields_(num_fields), paillier_(std::move(paillier)) {}

  std::string_view name() const override { return "Paillier"; }
  size_t num_fields() const override { return num_fields_; }
  size_t blob_size() const override {
    return num_fields_ * paillier_->ciphertext_size();
  }

  Result<Bytes> Encrypt(std::span<const uint64_t> fields,
                        uint64_t /*index*/) const override {
    if (fields.size() != num_fields_) {
      return InvalidArgument("field count mismatch");
    }
    Bytes blob;
    blob.reserve(blob_size());
    for (uint64_t f : fields) {
      Bytes c = paillier_->Encrypt(f);
      Append(blob, c);
    }
    return blob;
  }

  Status Add(std::span<uint8_t> acc, BytesView other) const override {
    if (acc.size() != blob_size() || other.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    size_t cs = paillier_->ciphertext_size();
    for (size_t f = 0; f < num_fields_; ++f) {
      Bytes a(acc.begin() + f * cs, acc.begin() + (f + 1) * cs);
      Bytes b(other.begin() + f * cs, other.begin() + (f + 1) * cs);
      Bytes sum = paillier_->Add(a, b);
      std::memcpy(acc.data() + f * cs, sum.data(), cs);
    }
    return Status::Ok();
  }

  Result<std::vector<uint64_t>> Decrypt(BytesView blob, uint64_t /*first*/,
                                        uint64_t /*last*/) const override {
    if (blob.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    size_t cs = paillier_->ciphertext_size();
    std::vector<uint64_t> fields;
    fields.reserve(num_fields_);
    for (size_t f = 0; f < num_fields_; ++f) {
      Bytes c(blob.begin() + f * cs, blob.begin() + (f + 1) * cs);
      TC_ASSIGN_OR_RETURN(uint64_t m, paillier_->Decrypt(c));
      fields.push_back(m);
    }
    return fields;
  }

  /// Paillier's additive identity blob is Enc(0) per field — but a fresh
  /// Enc(0) costs a full exponentiation, so like HEAC the tree seeds
  /// accumulators from the first operand instead (ZeroBlob unused).

 private:
  size_t num_fields_;
  std::shared_ptr<const crypto::Paillier> paillier_;
};

// -------------------------------------------------------------- EC-ElGamal

class EcElGamalCipher final : public DigestCipher {
 public:
  EcElGamalCipher(size_t num_fields,
                  std::shared_ptr<const crypto::EcElGamal> eg,
                  uint32_t table_bits)
      : num_fields_(num_fields), eg_(std::move(eg)), table_bits_(table_bits) {}

  std::string_view name() const override { return "EC-ElGamal"; }
  size_t num_fields() const override { return num_fields_; }
  size_t blob_size() const override {
    return num_fields_ * eg_->ciphertext_size();
  }

  Result<Bytes> Encrypt(std::span<const uint64_t> fields,
                        uint64_t /*index*/) const override {
    if (fields.size() != num_fields_) {
      return InvalidArgument("field count mismatch");
    }
    Bytes blob;
    blob.reserve(blob_size());
    for (uint64_t f : fields) {
      Bytes c = eg_->Encrypt(f);
      Append(blob, c);
    }
    return blob;
  }

  Status Add(std::span<uint8_t> acc, BytesView other) const override {
    if (acc.size() != blob_size() || other.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    size_t cs = eg_->ciphertext_size();
    for (size_t f = 0; f < num_fields_; ++f) {
      Bytes a(acc.begin() + f * cs, acc.begin() + (f + 1) * cs);
      Bytes b(other.begin() + f * cs, other.begin() + (f + 1) * cs);
      Bytes sum = eg_->Add(a, b);
      std::memcpy(acc.data() + f * cs, sum.data(), cs);
    }
    return Status::Ok();
  }

  Result<std::vector<uint64_t>> Decrypt(BytesView blob, uint64_t /*first*/,
                                        uint64_t /*last*/) const override {
    if (blob.size() != blob_size()) {
      return InvalidArgument("blob size mismatch");
    }
    size_t cs = eg_->ciphertext_size();
    std::vector<uint64_t> fields;
    fields.reserve(num_fields_);
    for (size_t f = 0; f < num_fields_; ++f) {
      Bytes c(blob.begin() + f * cs, blob.begin() + (f + 1) * cs);
      TC_ASSIGN_OR_RETURN(uint64_t m, eg_->Decrypt(c, table_bits_));
      fields.push_back(m);
    }
    return fields;
  }

 private:
  size_t num_fields_;
  std::shared_ptr<const crypto::EcElGamal> eg_;
  uint32_t table_bits_;
};

}  // namespace

std::unique_ptr<DigestCipher> MakePlainCipher(size_t num_fields) {
  return std::make_unique<PlainCipher>(num_fields);
}

std::unique_ptr<DigestCipher> MakeHeacCipher(
    size_t num_fields, std::shared_ptr<const crypto::GgmTree> tree) {
  return std::make_unique<HeacCipher>(num_fields, std::move(tree));
}

std::unique_ptr<DigestCipher> MakePaillierCipher(
    size_t num_fields, std::shared_ptr<const crypto::Paillier> paillier) {
  return std::make_unique<PaillierCipher>(num_fields, std::move(paillier));
}

std::unique_ptr<DigestCipher> MakeEcElGamalCipher(
    size_t num_fields, std::shared_ptr<const crypto::EcElGamal> eg,
    uint32_t dlog_table_bits) {
  return std::make_unique<EcElGamalCipher>(num_fields, std::move(eg),
                                           dlog_table_bits);
}

}  // namespace tc::index
