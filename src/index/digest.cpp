#include "index/digest.hpp"

#include <cmath>

#include "common/io.hpp"

namespace tc::index {

uint32_t DigestSchema::BinOf(int64_t value) const {
  if (hist_bins == 0) return 0;
  if (value < hist_min) return 0;
  int64_t offset = value - hist_min;
  uint64_t bin = static_cast<uint64_t>(offset) /
                 static_cast<uint64_t>(hist_width > 0 ? hist_width : 1);
  if (bin >= hist_bins) return hist_bins - 1;
  return static_cast<uint32_t>(bin);
}

std::vector<uint64_t> DigestSchema::Compute(
    std::span<const DataPoint> points) const {
  std::vector<uint64_t> fields(num_fields(), 0);
  for (const DataPoint& p : points) {
    if (with_sum) {
      fields[sum_field()] += static_cast<uint64_t>(p.value);
    }
    if (with_count) {
      fields[count_field()] += 1;
    }
    if (with_sumsq) {
      // Square in the uint64 ring; overflow wraps mod 2^64 just like the
      // HEAC plaintext space.
      uint64_t v = static_cast<uint64_t>(p.value);
      fields[sumsq_field()] += v * v;
    }
    if (with_trend) {
      uint64_t t = static_cast<uint64_t>(TrendTime(p.timestamp_ms));
      uint64_t v = static_cast<uint64_t>(p.value);
      fields[trend_field(0)] += t;
      fields[trend_field(1)] += t * t;
      fields[trend_field(2)] += t * v;
    }
    if (hist_bins > 0) {
      fields[hist_field(BinOf(p.value))] += 1;
    }
  }
  return fields;
}

void DigestSchema::Serialize(std::vector<uint8_t>& out) const {
  BinaryWriter w;
  w.PutU8(with_sum ? 1 : 0);
  w.PutU8(with_count ? 1 : 0);
  w.PutU8(with_sumsq ? 1 : 0);
  w.PutU8(with_trend ? 1 : 0);
  w.PutI64(trend_t0);
  w.PutI64(trend_unit_ms);
  w.PutU32(hist_bins);
  w.PutI64(hist_min);
  w.PutI64(hist_width);
  Append(out, w.data());
}

Result<DigestSchema> DigestSchema::Deserialize(std::span<const uint8_t> in,
                                               size_t& pos) {
  BinaryReader r(in.subspan(pos));
  DigestSchema s;
  TC_ASSIGN_OR_RETURN(uint8_t sum, r.GetU8());
  TC_ASSIGN_OR_RETURN(uint8_t count, r.GetU8());
  TC_ASSIGN_OR_RETURN(uint8_t sumsq, r.GetU8());
  TC_ASSIGN_OR_RETURN(uint8_t trend, r.GetU8());
  TC_ASSIGN_OR_RETURN(int64_t trend_t0, r.GetI64());
  TC_ASSIGN_OR_RETURN(int64_t trend_unit, r.GetI64());
  TC_ASSIGN_OR_RETURN(uint32_t bins, r.GetU32());
  TC_ASSIGN_OR_RETURN(int64_t hist_min, r.GetI64());
  TC_ASSIGN_OR_RETURN(int64_t hist_width, r.GetI64());
  s.with_sum = sum != 0;
  s.with_count = count != 0;
  s.with_sumsq = sumsq != 0;
  s.with_trend = trend != 0;
  s.trend_t0 = trend_t0;
  s.trend_unit_ms = trend_unit;
  s.hist_bins = bins;
  s.hist_min = hist_min;
  s.hist_width = hist_width;
  pos += r.position();
  return s;
}

Result<int64_t> DigestStats::Sum() const {
  if (schema_.sum_field() == DigestSchema::kNone) {
    return FailedPrecondition("schema has no SUM field");
  }
  return static_cast<int64_t>(fields_[schema_.sum_field()]);
}

Result<uint64_t> DigestStats::Count() const {
  if (schema_.count_field() == DigestSchema::kNone) {
    return FailedPrecondition("schema has no COUNT field");
  }
  return fields_[schema_.count_field()];
}

Result<double> DigestStats::Mean() const {
  TC_ASSIGN_OR_RETURN(int64_t sum, Sum());
  TC_ASSIGN_OR_RETURN(uint64_t count, Count());
  if (count == 0) return FailedPrecondition("empty aggregate has no mean");
  return static_cast<double>(sum) / static_cast<double>(count);
}

Result<double> DigestStats::Variance() const {
  if (schema_.sumsq_field() == DigestSchema::kNone) {
    return FailedPrecondition("schema has no SUMSQ field");
  }
  TC_ASSIGN_OR_RETURN(double mean, Mean());
  TC_ASSIGN_OR_RETURN(uint64_t count, Count());
  double sumsq = static_cast<double>(fields_[schema_.sumsq_field()]);
  double var = sumsq / static_cast<double>(count) - mean * mean;
  return var < 0 ? 0 : var;  // numeric guard
}

Result<double> DigestStats::StdDev() const {
  TC_ASSIGN_OR_RETURN(double var, Variance());
  return std::sqrt(var);
}

Result<double> DigestStats::TrendSlope() const {
  if (!schema_.with_trend) {
    return FailedPrecondition("schema has no TREND fields");
  }
  TC_ASSIGN_OR_RETURN(int64_t sum_v, Sum());
  TC_ASSIGN_OR_RETURN(uint64_t count, Count());
  if (count < 2) return FailedPrecondition("trend needs at least two points");
  // Normal equations over the decrypted moments. All sums carry exact
  // two's-complement values as long as the caller sized trend_unit_ms to
  // keep Σt² inside the ring.
  double n = static_cast<double>(count);
  double st = static_cast<double>(
      static_cast<int64_t>(fields_[schema_.trend_field(0)]));
  double stt = static_cast<double>(
      static_cast<int64_t>(fields_[schema_.trend_field(1)]));
  double stv = static_cast<double>(
      static_cast<int64_t>(fields_[schema_.trend_field(2)]));
  double sv = static_cast<double>(sum_v);
  double denom = n * stt - st * st;
  if (denom == 0) {
    return FailedPrecondition("all points share one time coordinate");
  }
  return (n * stv - st * sv) / denom;
}

Result<double> DigestStats::TrendIntercept() const {
  TC_ASSIGN_OR_RETURN(double slope, TrendSlope());
  TC_ASSIGN_OR_RETURN(int64_t sum_v, Sum());
  TC_ASSIGN_OR_RETURN(uint64_t count, Count());
  double n = static_cast<double>(count);
  double st = static_cast<double>(
      static_cast<int64_t>(fields_[schema_.trend_field(0)]));
  return (static_cast<double>(sum_v) - slope * st) / n;
}

Result<uint64_t> DigestStats::Freq(uint32_t bin) const {
  if (bin >= schema_.hist_bins) return OutOfRange("histogram bin out of range");
  return fields_[schema_.hist_field(bin)];
}

Result<int64_t> DigestStats::MinBinLow() const {
  if (schema_.hist_bins == 0) {
    return FailedPrecondition("schema has no histogram");
  }
  for (uint32_t b = 0; b < schema_.hist_bins; ++b) {
    if (fields_[schema_.hist_field(b)] != 0) {
      return schema_.hist_min + static_cast<int64_t>(b) * schema_.hist_width;
    }
  }
  return FailedPrecondition("empty aggregate has no min");
}

Result<int64_t> DigestStats::MaxBinHigh() const {
  if (schema_.hist_bins == 0) {
    return FailedPrecondition("schema has no histogram");
  }
  for (uint32_t b = schema_.hist_bins; b-- > 0;) {
    if (fields_[schema_.hist_field(b)] != 0) {
      return schema_.hist_min + (static_cast<int64_t>(b) + 1) * schema_.hist_width;
    }
  }
  return FailedPrecondition("empty aggregate has no max");
}

Result<int64_t> DigestStats::QuantileBinLow(double q) const {
  if (schema_.hist_bins == 0) {
    return FailedPrecondition("schema has no histogram");
  }
  if (q < 0.0 || q > 1.0) return InvalidArgument("quantile must be in [0,1]");
  uint64_t total = 0;
  for (uint32_t b = 0; b < schema_.hist_bins; ++b) {
    total += fields_[schema_.hist_field(b)];
  }
  if (total == 0) return FailedPrecondition("empty aggregate has no quantile");
  // Rank of the target point (1-based, ceil): the smallest bin whose
  // cumulative count reaches it.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (uint32_t b = 0; b < schema_.hist_bins; ++b) {
    cumulative += fields_[schema_.hist_field(b)];
    if (cumulative >= rank) {
      return schema_.hist_min + static_cast<int64_t>(b) * schema_.hist_width;
    }
  }
  return Internal("histogram accounting mismatch");
}

void AddDigests(std::span<uint64_t> a, std::span<const uint64_t> b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) a[i] += b[i];
}

}  // namespace tc::index
