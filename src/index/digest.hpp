// Chunk digests (§4.1, §4.5): per-chunk statistical summaries whose
// aggregation answers TimeCrypt's statistical queries.
//
// A digest is a flat vector of uint64 fields described by a DigestSchema:
//   SUM    — sum of values (int64 carried in the uint64 ring, so negatives
//            work through two's complement; mod-2^64 arithmetic matches the
//            HEAC plaintext space exactly)
//   COUNT  — number of points
//   SUMSQ  — sum of squared values (for VAR/STDEV)
//   HIST   — fixed-width bin counts (for MIN/MAX/FREQ, §4.5: "We compute
//            MIN/MAX values via the HISTOGRAM function")
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tc::index {

/// One raw measurement. Values are int64; applications scale floats to a
/// fixed precision (e.g. milli-units) as the paper's integer encoding does.
struct DataPoint {
  int64_t timestamp_ms = 0;
  int64_t value = 0;

  friend bool operator==(const DataPoint&, const DataPoint&) = default;
};

/// Which statistics a stream's digest carries (pre-configured per stream,
/// §4.1: "The content of a digest is pre-configured based on the statistical
/// queries to be supported per stream").
struct DigestSchema {
  bool with_sum = true;
  bool with_count = true;
  bool with_sumsq = false;
  // Trend extension (§4.5: the digest vector "can be extended with further
  // aggregation-based functions, e.g. ... private training of linear
  // machine learning models"): three extra moments — Σt, Σt², Σt·v — enable
  // least-squares value-vs-time fits over any encrypted range. Time enters
  // as (timestamp − t0) / trend_unit_ms, so pick the unit coarse enough
  // that Σt² stays within the 2^64 ring over the ranges you query.
  bool with_trend = false;
  int64_t trend_t0 = 0;
  int64_t trend_unit_ms = 60'000;  // default: minutes
  // Histogram: `hist_bins` fixed-width bins starting at hist_min; values
  // outside clamp into the edge bins. 0 bins = no histogram.
  uint32_t hist_bins = 0;
  int64_t hist_min = 0;
  int64_t hist_width = 1;

  size_t num_fields() const {
    return (with_sum ? 1 : 0) + (with_count ? 1 : 0) + (with_sumsq ? 1 : 0) +
           (with_trend ? 3 : 0) + hist_bins;
  }

  /// Field offsets within the digest vector (kNone when absent).
  static constexpr size_t kNone = static_cast<size_t>(-1);
  size_t sum_field() const { return with_sum ? 0 : kNone; }
  size_t count_field() const {
    return with_count ? (with_sum ? 1 : 0) : kNone;
  }
  size_t sumsq_field() const {
    if (!with_sumsq) return kNone;
    return (with_sum ? 1 : 0) + (with_count ? 1 : 0);
  }
  /// Trend moments: component 0 = Σt, 1 = Σt², 2 = Σt·v.
  size_t trend_field(uint32_t component) const {
    if (!with_trend) return kNone;
    return (with_sum ? 1 : 0) + (with_count ? 1 : 0) + (with_sumsq ? 1 : 0) +
           component;
  }
  size_t hist_field(uint32_t bin) const {
    return (with_sum ? 1 : 0) + (with_count ? 1 : 0) + (with_sumsq ? 1 : 0) +
           (with_trend ? 3 : 0) + bin;
  }

  /// A point's time coordinate in trend units.
  int64_t TrendTime(int64_t timestamp_ms) const {
    return (timestamp_ms - trend_t0) / (trend_unit_ms > 0 ? trend_unit_ms : 1);
  }

  /// Bin index a value falls into (clamped).
  uint32_t BinOf(int64_t value) const;

  /// Compute the digest fields of a batch of points.
  std::vector<uint64_t> Compute(std::span<const DataPoint> points) const;

  /// Wire encoding for stream metadata.
  void Serialize(class std::vector<uint8_t>& out) const;
  static Result<DigestSchema> Deserialize(std::span<const uint8_t> in,
                                          size_t& pos);

  friend bool operator==(const DigestSchema&, const DigestSchema&) = default;
};

/// Decoded view over aggregated plaintext digest fields: turns raw field
/// vectors into the paper's query results (SUM, COUNT, MEAN, VAR, STDEV,
/// HISTOGRAM, MIN/MAX, FREQ).
class DigestStats {
 public:
  DigestStats(const DigestSchema& schema, std::vector<uint64_t> fields)
      : schema_(schema), fields_(std::move(fields)) {}

  Result<int64_t> Sum() const;
  Result<uint64_t> Count() const;
  Result<double> Mean() const;
  /// Population variance via sumsq - mean^2.
  Result<double> Variance() const;
  Result<double> StdDev() const;
  /// Least-squares fit value ≈ slope·t + intercept over the aggregate (t in
  /// trend units). Requires with_trend, with_sum, and with_count.
  Result<double> TrendSlope() const;
  Result<double> TrendIntercept() const;
  /// Count in histogram bin.
  Result<uint64_t> Freq(uint32_t bin) const;
  /// Lower bound of the lowest/highest non-empty bin (paper's MIN/MAX: bin
  /// resolution, plus the frequency within that bin for free).
  Result<int64_t> MinBinLow() const;
  Result<int64_t> MaxBinHigh() const;
  /// Quantile estimate at bin resolution: the lower bound of the bin
  /// containing the q-th fraction of points (q in [0, 1]); e.g. q = 0.95
  /// answers "P95 latency" style queries from the same encrypted histogram
  /// that serves MIN/MAX — no extra digest fields needed.
  Result<int64_t> QuantileBinLow(double q) const;

  const std::vector<uint64_t>& fields() const { return fields_; }

 private:
  DigestSchema schema_;
  std::vector<uint64_t> fields_;
};

/// Add digest `b` into `a` field-wise (plaintext aggregation).
void AddDigests(std::span<uint64_t> a, std::span<const uint64_t> b);

}  // namespace tc::index
