// k-ary time-partitioned aggregation tree (§4.5, Fig 4).
//
// The server builds this index bottom-up over encrypted chunk digests:
// a node at level L, index N stores up to k digest entries, where entry j
// aggregates chunks [(N*k + j) * k^L, (N*k + j + 1) * k^L). Level 0 entries
// are the raw chunk digests; when the k entries of a node are complete their
// aggregate is appended to the parent. Time series ingest is in-order
// append-only (§4.5), which makes the update path a single rightmost spine.
//
// Range queries drill down both ends of the range and use whole higher-level
// entries in the middle: O(2(k-1) log_k n) digest additions worst case.
//
// Nodes live in a KvStore under computed identifiers (stream, level, index)
// — no stored references (§4.6) — with an LRU cache in front (§5).
#pragma once

#include <memory>
#include <string>

#include "index/digest_cipher.hpp"
#include "store/kv_store.hpp"
#include "store/lru_cache.hpp"

namespace tc::index {

struct AggTreeOptions {
  uint32_t fanout = 64;        // the paper's default k (§6 setup)
  size_t cache_bytes = 256 << 20;
};

/// Query-side statistics for benchmarks (cache behaviour, adds performed).
struct QueryStats {
  uint64_t nodes_fetched = 0;
  uint64_t cache_hits = 0;
  uint64_t digest_adds = 0;
};

class AggTree {
 public:
  /// `prefix` namespaces this tree's keys in the shared store (stream id).
  AggTree(std::shared_ptr<store::KvStore> kv, std::string prefix,
          std::shared_ptr<const DigestCipher> cipher, AggTreeOptions options);

  /// Append chunk `index`'s encrypted digest. Indices must arrive in order
  /// starting at 0 (in-order append-only workload, §4.5).
  Status Append(uint64_t index, BytesView digest_blob);

  /// Rediscover the append position from the backing store (server restart
  /// over a durable KV). Probes level-0 node keys — O(log n) Contains calls
  /// plus one node read; no scan API needed.
  Status Recover();

  /// Re-sync with a store that advanced underneath this handle (a replica
  /// store receiving shipped mutations): drop every cached node — appends
  /// rewrite rightmost-spine nodes in place, so any of them may be stale —
  /// and re-run the Recover probe for the new append position.
  Status Refresh();

  /// Aggregate over chunk range [first, last). Returns the encrypted
  /// aggregate blob; the caller decrypts with the outer keys.
  Result<Bytes> Query(uint64_t first, uint64_t last) const;

  /// Query variant that also reports fetch/add counts.
  Result<Bytes> Query(uint64_t first, uint64_t last, QueryStats& stats) const;

  /// The stored level-0 digest blob of one chunk (witnessed reads need the
  /// exact ciphertext bytes the producer uploaded). NotFound after decay.
  Result<Bytes> LeafDigest(uint64_t index) const;

  /// Drop a leaf-level digest range [first, last) — data decay support.
  /// Higher-level aggregates are retained, so coarse statistics over the
  /// decayed range still answer (the paper's retention/rollup model).
  Status DecayLeafRange(uint64_t first, uint64_t last);

  uint64_t num_chunks() const { return next_index_; }
  uint32_t fanout() const { return options_.fanout; }

  /// Approximate in-memory index size if fully resident: total digest bytes
  /// across all tree entries (Table 2 "Index - Size" column).
  uint64_t IndexBytes() const;

  /// Cache statistics (Fig 7 small-cache experiment).
  const store::LruCache& cache() const { return cache_; }

 private:
  std::string NodeKey(uint32_t level, uint64_t node_index) const;
  Result<Bytes> LoadNode(uint32_t level, uint64_t node_index,
                         QueryStats* stats) const;
  Status StoreNode(uint32_t level, uint64_t node_index, BytesView node);

  /// Aggregate entries [from, to) of a loaded node into `acc` (or move the
  /// first entry into acc when empty).
  Status FoldEntries(BytesView node, size_t from, size_t to, Bytes& acc,
                     QueryStats* stats) const;

  std::shared_ptr<store::KvStore> kv_;
  std::string prefix_;
  std::shared_ptr<const DigestCipher> cipher_;
  AggTreeOptions options_;
  mutable store::LruCache cache_;
  uint64_t next_index_ = 0;
};

}  // namespace tc::index
