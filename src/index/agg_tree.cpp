#include "index/agg_tree.hpp"

#include <cassert>

namespace tc::index {

AggTree::AggTree(std::shared_ptr<store::KvStore> kv, std::string prefix,
                 std::shared_ptr<const DigestCipher> cipher,
                 AggTreeOptions options)
    : kv_(std::move(kv)),
      prefix_(std::move(prefix)),
      cipher_(std::move(cipher)),
      options_(options),
      cache_(options.cache_bytes) {
  assert(options_.fanout >= 2);
}

std::string AggTree::NodeKey(uint32_t level, uint64_t node_index) const {
  // Identifier computed on the fly from the node's coordinates (§4.6).
  std::string key = prefix_;
  key += "/L";
  key += std::to_string(level);
  key += "/";
  key += std::to_string(node_index);
  return key;
}

Result<Bytes> AggTree::LoadNode(uint32_t level, uint64_t node_index,
                                QueryStats* stats) const {
  std::string key = NodeKey(level, node_index);
  if (auto cached = cache_.Get(key)) {
    if (stats != nullptr) {
      ++stats->nodes_fetched;
      ++stats->cache_hits;
    }
    return std::move(*cached);
  }
  if (stats != nullptr) ++stats->nodes_fetched;
  TC_ASSIGN_OR_RETURN(Bytes node, kv_->Get(key));
  cache_.Put(key, node);
  return node;
}

Status AggTree::StoreNode(uint32_t level, uint64_t node_index,
                          BytesView node) {
  std::string key = NodeKey(level, node_index);
  cache_.Put(key, node);
  return kv_->Put(key, node);
}

Status AggTree::Append(uint64_t index, BytesView digest_blob) {
  if (index != next_index_) {
    return FailedPrecondition(
        "append-only index: expected chunk " + std::to_string(next_index_) +
        ", got " + std::to_string(index));
  }
  if (digest_blob.size() != cipher_->blob_size()) {
    return InvalidArgument("digest blob size mismatch");
  }
  const uint32_t k = options_.fanout;

  // Append at level 0, then cascade completed nodes upward. `carry` holds
  // the aggregate of the node completed at the previous level.
  Bytes carry(digest_blob.begin(), digest_blob.end());
  uint64_t child_pos = index;  // entry position at the current level
  uint32_t level = 0;
  while (true) {
    uint64_t node_index = child_pos / k;
    size_t entry = child_pos % k;

    Bytes node;
    if (entry != 0) {
      TC_ASSIGN_OR_RETURN(node, LoadNode(level, node_index, nullptr));
      if (node.size() != entry * cipher_->blob_size()) {
        return Internal("index node has unexpected entry count");
      }
    }
    tc::Append(node, carry);  // append the new entry's bytes to the node
    TC_RETURN_IF_ERROR(StoreNode(level, node_index, node));

    if (entry != k - 1) break;  // node not complete: no cascade

    // Node complete: compute its aggregate and insert into the parent.
    Bytes agg(node.begin(), node.begin() + cipher_->blob_size());
    for (size_t e = 1; e < k; ++e) {
      TC_RETURN_IF_ERROR(cipher_->Add(
          std::span<uint8_t>(agg),
          BytesView(node).subspan(e * cipher_->blob_size(),
                                  cipher_->blob_size())));
    }
    carry = std::move(agg);
    child_pos = node_index;
    ++level;
  }
  next_index_ = index + 1;
  return Status::Ok();
}

Status AggTree::FoldEntries(BytesView node, size_t from, size_t to,
                            Bytes& acc, QueryStats* stats) const {
  size_t bs = cipher_->blob_size();
  if (to * bs > node.size()) {
    return Internal("index node shorter than expected");
  }
  for (size_t e = from; e < to; ++e) {
    BytesView entry = node.subspan(e * bs, bs);
    if (acc.empty()) {
      acc.assign(entry.begin(), entry.end());
    } else {
      TC_RETURN_IF_ERROR(cipher_->Add(std::span<uint8_t>(acc), entry));
      if (stats != nullptr) ++stats->digest_adds;
    }
  }
  return Status::Ok();
}

Result<Bytes> AggTree::Query(uint64_t first, uint64_t last) const {
  QueryStats stats;
  return Query(first, last, stats);
}

Result<Bytes> AggTree::Query(uint64_t first, uint64_t last,
                             QueryStats& stats) const {
  if (first >= last) return InvalidArgument("empty query range");
  if (last > next_index_) {
    return OutOfRange("query range exceeds ingested chunks (" +
                      std::to_string(next_index_) + ")");
  }
  const uint32_t k = options_.fanout;

  // Collect covering pieces in left-to-right order per level; because HEAC
  // requires contiguous addition, fold left pieces into `left_acc` (ordered
  // ascending) and right pieces into a stack folded at the end.
  //
  // Standard k-ary segment walk: at each level clip partial nodes at both
  // ends, then ascend. Left pieces are emitted in ascending chunk order;
  // right pieces in descending order (they are collected while ascending,
  // so fold them in reverse at the end).
  Bytes left_acc;
  std::vector<Bytes> right_pieces;

  uint64_t lo = first, hi = last;
  uint32_t level = 0;
  while (lo < hi) {
    uint64_t node_lo = lo / k;
    uint64_t node_hi = (hi - 1) / k;
    if (node_lo == node_hi) {
      // Remaining range fits in one node.
      TC_ASSIGN_OR_RETURN(Bytes node, LoadNode(level, node_lo, &stats));
      TC_RETURN_IF_ERROR(
          FoldEntries(node, lo % k, (hi - 1) % k + 1, left_acc, &stats));
      break;
    }
    if (lo % k != 0) {
      TC_ASSIGN_OR_RETURN(Bytes node, LoadNode(level, node_lo, &stats));
      TC_RETURN_IF_ERROR(FoldEntries(node, lo % k, k, left_acc, &stats));
      lo = (node_lo + 1) * k;
    }
    if (hi % k != 0) {
      TC_ASSIGN_OR_RETURN(Bytes node, LoadNode(level, node_hi, &stats));
      Bytes piece;
      TC_RETURN_IF_ERROR(FoldEntries(node, 0, hi % k, piece, &stats));
      right_pieces.push_back(std::move(piece));
      hi = node_hi * k;
    }
    lo /= k;
    hi /= k;
    ++level;
  }

  // left_acc covers [first, X); right_pieces (reversed) cover [X, last)
  // in ascending order.
  for (auto it = right_pieces.rbegin(); it != right_pieces.rend(); ++it) {
    if (left_acc.empty()) {
      left_acc = std::move(*it);
    } else {
      TC_RETURN_IF_ERROR(cipher_->Add(std::span<uint8_t>(left_acc), *it));
      ++stats.digest_adds;
    }
  }
  if (left_acc.empty()) return Internal("query produced no digest");
  return left_acc;
}

Status AggTree::Recover() {
  // The probe assumes level-0 nodes form a contiguous prefix, which decay
  // (DecayLeafRange) can break: recover *before* re-applying retention
  // policies, or persist the decay watermark externally.
  if (!kv_->Contains(NodeKey(0, 0))) {
    next_index_ = 0;
    return Status::Ok();
  }
  // Exponential then binary search for the last existing level-0 node.
  uint64_t lo = 0, hi = 1;
  while (kv_->Contains(NodeKey(0, hi))) {
    lo = hi;
    hi *= 2;
  }
  while (lo + 1 < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (kv_->Contains(NodeKey(0, mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  TC_ASSIGN_OR_RETURN(Bytes node, LoadNode(0, lo, nullptr));
  if (node.empty() || node.size() % cipher_->blob_size() != 0) {
    return DataLoss("recovered index node has torn size");
  }
  next_index_ = lo * options_.fanout + node.size() / cipher_->blob_size();
  return Status::Ok();
}

Status AggTree::Refresh() {
  cache_.Clear();
  uint64_t before = next_index_;
  next_index_ = 0;
  Status s = Recover();
  if (!s.ok()) {
    // Keep serving the position we had; the cache drop alone is harmless.
    next_index_ = before;
  }
  return s;
}

Result<Bytes> AggTree::LeafDigest(uint64_t index) const {
  if (index >= next_index_) return OutOfRange("chunk not ingested");
  const uint32_t k = options_.fanout;
  TC_ASSIGN_OR_RETURN(Bytes node, LoadNode(0, index / k, nullptr));
  size_t bs = cipher_->blob_size();
  size_t entry = index % k;
  if ((entry + 1) * bs > node.size()) {
    return Internal("leaf node shorter than expected");
  }
  BytesView view = BytesView(node).subspan(entry * bs, bs);
  return Bytes(view.begin(), view.end());
}

Status AggTree::DecayLeafRange(uint64_t first, uint64_t last) {
  if (first >= last || last > next_index_) {
    return InvalidArgument("bad decay range");
  }
  const uint32_t k = options_.fanout;
  // Only drop level-0 nodes fully inside the range whose parents captured
  // their aggregate (i.e. complete nodes).
  uint64_t node_first = (first + k - 1) / k;
  uint64_t node_last = last / k;
  for (uint64_t n = node_first; n < node_last; ++n) {
    // Parent aggregate exists only if the node completed.
    if ((n + 1) * k <= next_index_) {
      std::string key = NodeKey(0, n);
      cache_.Erase(key);
      Status s = kv_->Delete(key);
      if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
    }
  }
  return Status::Ok();
}

uint64_t AggTree::IndexBytes() const {
  // Sum over levels of ceil(n / k^level) entries, each blob_size() bytes.
  const uint32_t k = options_.fanout;
  uint64_t total = 0;
  uint64_t entries = next_index_;
  while (entries > 0) {
    total += entries * cipher_->blob_size();
    entries /= k;
  }
  return total;
}

}  // namespace tc::index
