// Fixed-size worker pool for scatter-gather fan-out: the shard router
// dispatches one task per shard and blocks until all complete. Sized small
// (one thread per shard by default) — the per-connection server threads
// provide request-level parallelism; this pool only widens a single
// cluster-wide request across shards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tc::cluster {

class WorkerPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed: RunAll then executes
  /// inline on the calling thread (the single-shard / single-core case).
  explicit WorkerPool(size_t num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run every task and block until all have finished. Safe to call from
  /// many threads concurrently (each call tracks its own completion);
  /// tasks must not call RunAll on the same pool (no nested fan-out).
  void RunAll(std::vector<std::function<void()>> tasks);

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t remaining = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::pair<std::function<void()>, std::shared_ptr<Batch>>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace tc::cluster
