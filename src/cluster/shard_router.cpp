#include "cluster/shard_router.hpp"

#include <algorithm>
#include <thread>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "net/messages.hpp"

namespace tc::cluster {

using net::MessageType;

namespace {

/// SplitMix64 finalizer: stream uuids are client-chosen, so the placement
/// hash must disperse any input distribution (sequential test uuids
/// included) uniformly across shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t ExecThreads(size_t num_shards, const RouterOptions& options) {
  if (options.scatter_threads > 0) return options.scatter_threads;
  if (num_shards <= 1) return 0;
  size_t hw = std::thread::hardware_concurrency();
  return std::min(num_shards, hw == 0 ? size_t{1} : hw);
}

std::vector<std::shared_ptr<replica::ReplicaSet>> WrapEngines(
    std::vector<std::shared_ptr<server::ServerEngine>> engines) {
  std::vector<std::shared_ptr<replica::ReplicaSet>> sets;
  sets.reserve(engines.size());
  for (auto& engine : engines) {
    sets.push_back(replica::ReplicaSet::Single(std::move(engine)));
  }
  return sets;
}

/// True when a shard may serve `type` from a caught-up replica instead of
/// its primary. Mirrors the read-only routing in ShardRouter::Handle —
/// grants/envelopes/attestations stay on primaries (replica engines do not
/// refresh key-store state), and Ping/FetchGrants probe primaries.
bool ReplicaServable(MessageType type) {
  switch (type) {
    case MessageType::kGetRange:
    case MessageType::kGetStatRange:
    case MessageType::kGetStatSeries:
    case MessageType::kGetStreamInfo:
    case MessageType::kGetChunkWitnessed:
    case MessageType::kMultiStatRange:
      return true;
    default:
      return false;
  }
}

/// In-process shard channel: net::Transport over one shard's ReplicaSet,
/// with calls executed on the router's shared executor so a scatter across
/// N shards genuinely overlaps. The same scatter code would drive a
/// TcpClient channel to a remote shard unchanged.
class LocalShardChannel final : public net::Transport {
 public:
  LocalShardChannel(std::shared_ptr<replica::ReplicaSet> set,
                    net::Executor* exec)
      : set_(std::move(set)), exec_(exec) {}

  net::PendingCall AsyncCall(MessageType type, BytesView body,
                             net::CallCallback on_done = nullptr) override {
    net::CallCompleter completer(std::move(on_done));
    // Copy up front: the caller's view need not outlive AsyncCall. The
    // trace context is captured here and re-stamped on the executor thread
    // (thread-locals do not follow a Submit), so shard spans stay in the
    // caller's trace, under the span that scattered the call.
    Bytes copy(body.begin(), body.end());
    metrics::TraceContext ctx = metrics::OutgoingTraceContext();
    exec_->Submit([set = set_, completer, type, copy = std::move(copy),
                   ctx] {
      metrics::SetCurrentTraceContext(ctx);
      completer.Complete(ReplicaServable(type) ? set->HandleRead(type, copy)
                                               : set->Handle(type, copy));
      metrics::SetCurrentTraceContext({});
    });
    return completer.pending();
  }

 private:
  std::shared_ptr<replica::ReplicaSet> set_;
  net::Executor* exec_;
};

constexpr const char kShardMetaKey[] = "meta/cluster/shard";

}  // namespace

Status BindShardMeta(store::KvStore& kv, uint32_t shard_id,
                     uint32_t num_shards) {
  auto existing = kv.Get(kShardMetaKey);
  if (!existing.ok()) {
    if (existing.status().code() != StatusCode::kNotFound) {
      return existing.status();
    }
    BinaryWriter w;
    w.PutU32(shard_id);
    w.PutU32(num_shards);
    return kv.Put(kShardMetaKey, w.data());
  }
  BinaryReader r(*existing);
  TC_ASSIGN_OR_RETURN(uint32_t stored_id, r.GetU32());
  TC_ASSIGN_OR_RETURN(uint32_t stored_n, r.GetU32());
  if (stored_id != shard_id || stored_n != num_shards) {
    return FailedPrecondition(
        "store was laid out as shard " + std::to_string(stored_id) + "/" +
        std::to_string(stored_n) + " but is being opened as shard " +
        std::to_string(shard_id) + "/" + std::to_string(num_shards) +
        "; changing the shard count re-homes streams away from their "
        "on-disk state — restart with the original --shards value");
  }
  return Status::Ok();
}

ShardRouter::ShardRouter(
    std::vector<std::shared_ptr<server::ServerEngine>> shards,
    RouterOptions options)
    : ShardRouter(WrapEngines(std::move(shards)), options) {}

ShardRouter::ShardRouter(
    std::vector<std::shared_ptr<replica::ReplicaSet>> shards,
    RouterOptions options)
    : sets_(std::move(shards)),
      exec_(std::make_unique<net::Executor>(ExecThreads(sets_.size(), options),
                                            "scatter")) {
  if (sets_.empty()) {
    // A router needs at least one shard; constructing without any is a
    // programming error, fail loudly rather than segfault on first use.
    std::abort();
  }
  channels_.reserve(sets_.size());
  for (auto& set : sets_) {
    channels_.push_back(std::make_shared<LocalShardChannel>(set, exec_.get()));
  }
}

ShardRouter::~ShardRouter() = default;

size_t PlaceShard(uint64_t uuid, size_t num_shards) {
  return num_shards <= 1 ? 0 : static_cast<size_t>(Mix64(uuid) % num_shards);
}

size_t ShardRouter::ShardOf(uint64_t uuid) const {
  return PlaceShard(uuid, sets_.size());
}

size_t ShardRouter::NumStreams() const {
  size_t total = 0;
  for (const auto& set : sets_) total += set->NumStreams();
  return total;
}

uint64_t ShardRouter::TotalIndexBytes() const {
  uint64_t total = 0;
  for (const auto& set : sets_) total += set->TotalIndexBytes();
  return total;
}

Result<Bytes> ShardRouter::Handle(MessageType type, BytesView body) {
  // The routing span: every shard-engine span produced below (inline or
  // across the scatter executor) parents under it, so a stitched trace
  // shows router fan-out time vs per-shard handling time.
  static metrics::LatencyHistogram& route_hist =
      metrics::GetHistogram("tc_router_request_seconds");
  metrics::TraceSpan span("router_dispatch", &route_hist,
                          metrics::TraceSpan::kNoShard,
                          static_cast<uint8_t>(type));
  switch (type) {
    // Single-stream mutations (and key-store state): the body starts with
    // the owning stream's uuid; route to its shard's primary.
    case MessageType::kCreateStream:
    case MessageType::kDeleteStream:
    case MessageType::kInsertChunk:
    case MessageType::kInsertChunkBatch:
    case MessageType::kDeleteRange:
    case MessageType::kPutGrant:
    case MessageType::kRevokeGrant:
    case MessageType::kPutEnvelopes:
    case MessageType::kGetEnvelopes:
    case MessageType::kPutAttestation:
    case MessageType::kGetAttestation:
      return RouteByUuid(type, body, /*read_only=*/false);
    // Single-stream read-only queries: serveable by a caught-up replica of
    // the owning shard (primary fallback inside the set).
    case MessageType::kGetRange:
    case MessageType::kGetStatRange:
    case MessageType::kGetStatSeries:
    case MessageType::kGetStreamInfo:
    case MessageType::kGetChunkWitnessed:
      return RouteByUuid(type, body, /*read_only=*/true);
    // Cluster-wide operations: scatter-gather through the shard channels.
    case MessageType::kFetchGrants: return FetchGrants(body);
    case MessageType::kMultiStatRange: return MultiStatRange(body);
    case MessageType::kClusterInfo: return ClusterInfo();
    case MessageType::kMetricsInfo: return MetricsInfo();
    // One span ring / event journal per process: the router and its
    // in-process shard engines share them, so answering here covers every
    // span and event this process produced — no scatter needed.
    case MessageType::kTraceInfo: {
      TC_ASSIGN_OR_RETURN(auto req, net::TraceInfoRequest::Decode(body));
      return net::TraceInfoResponse::FromRing(req).Encode();
    }
    case MessageType::kEventsInfo: {
      TC_ASSIGN_OR_RETURN(auto req, net::EventsInfoRequest::Decode(body));
      return net::EventsInfoResponse::FromJournal(req).Encode();
    }
    case MessageType::kPing: return Broadcast(type, body);
    case MessageType::kRollupStream: return RollupStream(body);
    case MessageType::kResponse: break;
    // Replication frames address a follower endpoint (and kReplicaHello a
    // PrimaryCoordinator wrapping this router), not the cluster itself.
    case MessageType::kReplicaOps: break;
    case MessageType::kReplicaHello: break;
    case MessageType::kReplicaSnapshotBegin: break;
    case MessageType::kReplicaSnapshotChunk: break;
    case MessageType::kReplicaSnapshotEnd: break;
    case MessageType::kReplicaHeartbeat: break;
  }
  return InvalidArgument("unknown message type");
}

Result<Bytes> ShardRouter::RouteByUuid(MessageType type, BytesView body,
                                       bool read_only) {
  BinaryReader r(body);
  TC_ASSIGN_OR_RETURN(uint64_t uuid, r.GetU64());
  auto& set = sets_[ShardOf(uuid)];
  return read_only ? set->HandleRead(type, body) : set->Handle(type, body);
}

std::vector<Result<Bytes>> ShardRouter::Gather(
    std::vector<net::PendingCall> calls) {
  // Wait the whole set before returning: callers merge the results and
  // must never observe a scattered sub-call still running.
  std::vector<Result<Bytes>> results;
  results.reserve(calls.size());
  for (auto& call : calls) results.push_back(call.Wait());
  return results;
}

Result<Bytes> ShardRouter::Broadcast(MessageType type, BytesView body) {
  std::vector<net::PendingCall> calls;
  calls.reserve(channels_.size());
  for (auto& channel : channels_) {
    calls.push_back(channel->AsyncCall(type, body));
  }
  for (auto& result : Gather(std::move(calls))) {
    TC_RETURN_IF_ERROR(result.status());
  }
  return Bytes{};
}

Result<Bytes> ShardRouter::FetchGrants(BytesView body) {
  // Grants are keyed by principal, and a principal's streams can live on
  // any shard — the one cluster-wide read on the consumer path. Served by
  // primaries: replica engines do not refresh key-store state.
  std::vector<net::PendingCall> calls;
  calls.reserve(channels_.size());
  for (auto& channel : channels_) {
    calls.push_back(channel->AsyncCall(MessageType::kFetchGrants, body));
  }

  net::FetchGrantsResponse merged;
  for (auto& result : Gather(std::move(calls))) {
    TC_RETURN_IF_ERROR(result.status());
    TC_ASSIGN_OR_RETURN(auto partial, net::FetchGrantsResponse::Decode(*result));
    for (auto& entry : partial.grants) merged.grants.push_back(std::move(entry));
  }
  return merged.Encode();
}

Result<Bytes> ShardRouter::ClusterInfo() {
  net::ClusterInfoResponse resp;
  resp.shards.reserve(sets_.size());
  for (size_t i = 0; i < sets_.size(); ++i) {
    resp.shards.push_back(
        sets_[i]->ShardInfoSnapshot(static_cast<uint32_t>(i)));
  }
  return resp.Encode();
}

Result<Bytes> ShardRouter::MetricsInfo() {
  // Refresh the shard-derived gauges, then serialize the whole registry.
  for (size_t i = 0; i < sets_.size(); ++i) {
    sets_[i]->ShardInfoSnapshot(static_cast<uint32_t>(i));
  }
  return net::MetricsInfoResponse::FromRegistry().Encode();
}

Result<Bytes> ShardRouter::MultiStatRange(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::MultiStatRangeRequest::Decode(body));
  if (req.uuids.empty()) return InvalidArgument("no streams given");

  // Group streams by owning shard, preserving request order so the first
  // group starts with uuids[0] (whose chunk bounds name the response, as
  // in the single-engine handler).
  std::vector<std::vector<uint64_t>> groups;
  std::vector<size_t> group_shard;
  std::vector<size_t> shard_to_group(sets_.size(), SIZE_MAX);
  for (uint64_t uuid : req.uuids) {
    size_t shard = ShardOf(uuid);
    if (shard_to_group[shard] == SIZE_MAX) {
      shard_to_group[shard] = groups.size();
      groups.emplace_back();
      group_shard.push_back(shard);
    }
    groups[shard_to_group[shard]].push_back(uuid);
  }
  if (groups.size() == 1) {
    // All streams on one shard: its engine does the whole aggregation.
    return sets_[group_shard[0]]->HandleRead(MessageType::kMultiStatRange,
                                             body);
  }

  // The merge needs the homomorphic Add; build it from the first stream's
  // public config, exactly as each shard does server-side.
  net::DeleteStreamRequest info_req{req.uuids[0]};
  TC_ASSIGN_OR_RETURN(Bytes info_blob,
                      sets_[ShardOf(req.uuids[0])]->HandleRead(
                          MessageType::kGetStreamInfo, info_req.Encode()));
  TC_ASSIGN_OR_RETURN(auto info, net::StreamInfoResponse::Decode(info_blob));
  TC_ASSIGN_OR_RETURN(auto cipher,
                      server::ServerEngine::MakeAddCipher(info.config));

  // One pipelined sub-query per involved shard; the cross-shard merge
  // (homomorphic adds) runs on this thread once all partials land.
  std::vector<net::PendingCall> calls;
  calls.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    net::MultiStatRangeRequest sub{groups[g], req.range};
    calls.push_back(channels_[group_shard[g]]->AsyncCall(
        MessageType::kMultiStatRange, sub.Encode()));
  }
  auto results = Gather(std::move(calls));

  net::StatRangeResponse merged;
  Bytes acc;
  for (size_t g = 0; g < groups.size(); ++g) {
    TC_RETURN_IF_ERROR(results[g].status());
    TC_ASSIGN_OR_RETURN(auto partial,
                        net::StatRangeResponse::Decode(*results[g]));
    if (g == 0) {
      acc = std::move(partial.aggregate_blob);
      merged.first_chunk = partial.first_chunk;
      merged.last_chunk = partial.last_chunk;
    } else {
      if (partial.aggregate_blob.size() != acc.size()) {
        return FailedPrecondition(
            "inter-stream query requires matching digest layouts");
      }
      TC_RETURN_IF_ERROR(
          cipher->Add(std::span<uint8_t>(acc), partial.aggregate_blob));
    }
  }
  merged.aggregate_blob = std::move(acc);
  return merged.Encode();
}

Result<Bytes> ShardRouter::RollupStream(BytesView body) {
  TC_ASSIGN_OR_RETURN(auto req, net::RollupStreamRequest::Decode(body));
  size_t source_shard = ShardOf(req.source_uuid);
  size_t target_shard = ShardOf(req.target_uuid);
  if (source_shard == target_shard) {
    // Same shard: the engine's native rollup (one lock scope, no wire
    // re-encoding of window aggregates).
    return sets_[source_shard]->Handle(MessageType::kRollupStream, body);
  }
  if (req.granularity_chunks == 0) {
    return InvalidArgument("rollup granularity must be positive");
  }

  // Cross-shard: decompose into the wire operations rollup is made of.
  // The legs are data-dependent (each needs the previous one's result), so
  // they run sequentially on this thread against the shard sets directly.
  // Window aggregates are plain encrypted digests, so the derived stream
  // built from a StatSeries is byte-identical to the engine-native path.
  // All legs run against primaries: a rollup is a write, and deriving it
  // from a lagging replica would silently truncate the derived stream.
  net::DeleteStreamRequest info_req{req.source_uuid};
  TC_ASSIGN_OR_RETURN(Bytes info_blob,
                      sets_[source_shard]->Handle(MessageType::kGetStreamInfo,
                                                  info_req.Encode()));
  TC_ASSIGN_OR_RETURN(auto info, net::StreamInfoResponse::Decode(info_blob));
  ChunkClock clock(info.config.t0, info.config.delta_ms);

  uint64_t first = 0, last = info.num_chunks;
  if (!(req.range.start == 0 && req.range.end == 0)) {
    TC_ASSIGN_OR_RETURN(auto idx_range, clock.IndexRange(req.range));
    first = idx_range.first;
    if (first >= info.num_chunks) return OutOfRange("range beyond ingested data");
    last = std::min(idx_range.second, info.num_chunks);
  }
  first -= first % req.granularity_chunks;
  last -= last % req.granularity_chunks;
  if (first >= last) return InvalidArgument("rollup segment is empty");

  net::StreamConfig derived = info.config;
  // Match the engine-native path: derived streams carry no witness tree
  // (their digests are server-computed, not producer-sealed).
  derived.integrity = false;
  derived.name += "/rollup" + std::to_string(req.granularity_chunks);
  derived.delta_ms = info.config.delta_ms *
                     static_cast<int64_t>(req.granularity_chunks);
  derived.t0 = clock.RangeOfChunk(first).start;
  net::CreateStreamRequest create{req.target_uuid, derived};
  TC_RETURN_IF_ERROR(sets_[target_shard]
                         ->Handle(MessageType::kCreateStream, create.Encode())
                         .status());

  net::StatSeriesRequest series{
      req.source_uuid,
      {clock.RangeOfChunk(first).start, clock.RangeOfChunk(last - 1).end},
      req.granularity_chunks};
  TC_ASSIGN_OR_RETURN(Bytes series_blob,
                      sets_[source_shard]->Handle(MessageType::kGetStatSeries,
                                                  series.Encode()));
  TC_ASSIGN_OR_RETURN(auto windows, net::StatSeriesResponse::Decode(series_blob));

  net::InsertChunkBatchRequest batch;
  batch.uuid = req.target_uuid;
  batch.entries.reserve(windows.aggregates.size());
  for (size_t j = 0; j < windows.aggregates.size(); ++j) {
    batch.entries.push_back({j, std::move(windows.aggregates[j]), Bytes{}});
  }
  TC_RETURN_IF_ERROR(sets_[target_shard]
                         ->Handle(MessageType::kInsertChunkBatch, batch.Encode())
                         .status());

  BinaryWriter w;
  w.PutU64(first);
  w.PutU64(last);
  return std::move(w).Take();
}

}  // namespace tc::cluster
