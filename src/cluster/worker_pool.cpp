#include "cluster/worker_pool.hpp"

namespace tc::cluster {

WorkerPool::WorkerPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front().first);
      batch = std::move(queue_.front().second);
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(batch->mu);
      if (--batch->remaining == 0) batch->done_cv.notify_all();
    }
  }
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Inline when the pool has no workers, or for a single task (dispatching
  // one task to a worker just adds a handoff).
  if (threads_.empty() || tasks.size() == 1) {
    for (auto& t : tasks) t();
    return;
  }
  // Run one task on the calling thread — it would otherwise idle-wait, and
  // with pools sized one-thread-per-shard this keeps all cores busy.
  auto batch = std::make_shared<Batch>();
  batch->remaining = tasks.size() - 1;
  {
    std::lock_guard lock(mu_);
    for (size_t i = 1; i < tasks.size(); ++i) {
      queue_.emplace_back(std::move(tasks[i]), batch);
    }
  }
  work_cv_.notify_all();
  tasks[0]();
  std::unique_lock lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->remaining == 0; });
}

}  // namespace tc::cluster
