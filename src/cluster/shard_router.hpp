// Sharded cluster layer (§3.2, §4.6): TimeCrypt server nodes are stateless
// over a partitioned key-value store, so throughput scales horizontally
// with the number of nodes. This router reproduces that architecture in
// one process: N independent ServerEngine shards, each over its own KV
// namespace, with streams partitioned by uuid hash.
//
// Single-stream messages (the hot path: ingest, range/stat queries, grants
// on a stream) route to the owning shard inline with no cross-shard
// coordination. Cluster-wide operations — FetchGrants (keyed by principal,
// not stream), MultiStatRange over streams on different shards, Ping,
// ClusterInfo — scatter one net::AsyncCall per involved shard through that
// shard's channel and gather the PendingCall set. Local shards are reached
// through an in-process channel whose calls run on a small executor (the
// CPU-bound remnant of the old scatter worker pool); the same scatter code
// drives remote shards through any net::Transport — socket-backed shard
// channels are a constructor away, not a redesign. RollupStream whose
// source and target hash to different shards is decomposed into the wire
// operations it is made of (create + windowed stat series + batch insert),
// so derived streams always live on the shard their uuid hashes to and
// later requests find them without a placement directory.
//
// Each shard is a replica::ReplicaSet. With followers configured, the
// shard's mutations ship to replica stores, read-only messages (stat/range
// queries, stream info, witnessed reads, and MultiStatRange sub-queries)
// round-robin across caught-up replicas with primary fallback, and a dead
// primary can be failed over to a promoted follower without losing the
// stream history. A replica-less shard behaves exactly as before.
//
// The router implements net::RequestHandler, so it drops in anywhere a
// single engine did: behind InProcTransport, behind the TCP server, under
// the same clients. Restart durability composes: shard placement is a pure
// hash, so engines recovered from the same per-shard stores see exactly
// the streams they owned before.
#pragma once

#include <memory>
#include <vector>

#include "net/executor.hpp"
#include "net/wire.hpp"
#include "replica/replica_set.hpp"
#include "server/server_engine.hpp"

namespace tc::cluster {

struct RouterOptions {
  /// Width of the executor backing the local shard channels (scatter-gather
  /// fan-out). 0 = one thread per shard, capped at the hardware concurrency
  /// (a 1-shard or 1-core router runs scattered calls inline).
  size_t scatter_threads = 0;
};

/// Stream placement: the shard owning `uuid` among `num_shards` — a pure
/// stateless hash, identical across restarts and across every node running
/// the same shard count (follower daemons use it to route reads without a
/// router instance).
size_t PlaceShard(uint64_t uuid, size_t num_shards);

/// Persist-or-verify the cluster layout in a shard's store. On a fresh
/// store the (shard_id, num_shards) pair is written under a meta key; on a
/// reused store a mismatch fails fast — stream placement is a pure hash of
/// (uuid, N), so restarting with a different N would silently re-home
/// streams away from their on-disk state instead of serving it.
Status BindShardMeta(store::KvStore& kv, uint32_t shard_id,
                     uint32_t num_shards);

class ShardRouter final : public net::RequestHandler {
 public:
  /// Replica-less router: wraps each engine in a single-member set.
  explicit ShardRouter(
      std::vector<std::shared_ptr<server::ServerEngine>> shards,
      RouterOptions options = {});

  /// Replicated router: one replica set per shard.
  explicit ShardRouter(
      std::vector<std::shared_ptr<replica::ReplicaSet>> shards,
      RouterOptions options = {});

  ~ShardRouter();

  // net::RequestHandler
  Result<Bytes> Handle(net::MessageType type, BytesView body) override;

  size_t num_shards() const { return sets_.size(); }

  /// The shard owning `uuid` — a pure stateless hash, identical across
  /// restarts and across every node running the same shard count.
  size_t ShardOf(uint64_t uuid) const;

  /// Cluster-wide stream count / index bytes (sums over shards).
  size_t NumStreams() const;
  uint64_t TotalIndexBytes() const;

  /// One shard's asynchronous channel (tests issue scattered calls through
  /// it directly).
  const std::shared_ptr<net::Transport>& channel(size_t i) const {
    return channels_[i];
  }

  /// Direct handle to one shard's primary engine (tests and tools peek at
  /// placement). Null while that shard's primary is down.
  std::shared_ptr<server::ServerEngine> shard(size_t i) const {
    return sets_[i]->primary();
  }

  /// One shard's replica set (failover drills drive promotion through it).
  const std::shared_ptr<replica::ReplicaSet>& replica_set(size_t i) const {
    return sets_[i];
  }

 private:
  /// Route a message whose body starts with the owning stream's uuid.
  /// `read_only` selects the replica-serving path.
  Result<Bytes> RouteByUuid(net::MessageType type, BytesView body,
                            bool read_only);

  /// Wait on a scattered call set, in order.
  static std::vector<Result<Bytes>> Gather(
      std::vector<net::PendingCall> calls);

  // Scatter-gather handlers.
  Result<Bytes> FetchGrants(BytesView body);
  Result<Bytes> MultiStatRange(BytesView body);
  Result<Bytes> ClusterInfo();
  Result<Bytes> MetricsInfo();
  Result<Bytes> Broadcast(net::MessageType type, BytesView body);

  /// Cross-shard rollup: decomposed into wire ops against both shards.
  Result<Bytes> RollupStream(BytesView body);

  std::vector<std::shared_ptr<replica::ReplicaSet>> sets_;
  /// Executor behind the local channels; must outlive them.
  std::unique_ptr<net::Executor> exec_;
  /// Per-shard async channels (in-process adapters over sets_).
  std::vector<std::shared_ptr<net::Transport>> channels_;
};

}  // namespace tc::cluster
