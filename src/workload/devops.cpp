#include "workload/devops.hpp"

#include <algorithm>

namespace tc::workload {

namespace {
constexpr const char* kCpuMetrics[] = {
    "cpu_user",  "cpu_system", "cpu_idle",   "cpu_nice",  "cpu_iowait",
    "cpu_irq",   "cpu_softirq", "cpu_steal", "cpu_guest", "cpu_guest_nice",
};
}  // namespace

DevOpsGenerator::DevOpsGenerator(DevOpsConfig config)
    : config_(config), rng_(config.seed) {
  series_.resize(static_cast<size_t>(config_.num_hosts) * config_.num_metrics);
  for (auto& s : series_) {
    s.level = rng_.NextDouble() * 100.0;
    s.next_ts = config_.t0;
  }
}

std::string DevOpsGenerator::StreamName(uint32_t host, uint32_t metric) const {
  constexpr size_t kNames = sizeof(kCpuMetrics) / sizeof(kCpuMetrics[0]);
  std::string name = "host_";
  if (host < 100) name += host < 10 ? "00" : "0";
  name += std::to_string(host);
  name += "/";
  name += metric < kNames ? kCpuMetrics[metric]
                          : ("metric_" + std::to_string(metric)).c_str();
  return name;
}

index::DataPoint DevOpsGenerator::Next(uint32_t host, uint32_t metric) {
  SeriesState& s = StateOf(host, metric);
  // Bounded random walk, TSBS-style: step ~N(0, 4), clamp to [0, 100].
  s.level = std::clamp(s.level + rng_.NextGaussian() * 4.0, 0.0, 100.0);
  index::DataPoint p;
  p.timestamp_ms = s.next_ts;
  p.value = static_cast<int64_t>(s.level * 100.0);  // percent x100
  s.next_ts += config_.sample_interval_ms;
  return p;
}

std::vector<index::DataPoint> DevOpsGenerator::Batch(uint32_t host,
                                                     uint32_t metric,
                                                     size_t n) {
  std::vector<index::DataPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next(host, metric));
  return out;
}

index::DigestSchema DevOpsGenerator::CpuSchema() {
  index::DigestSchema s;
  s.with_sum = s.with_count = true;
  s.with_sumsq = false;
  s.hist_bins = 10;
  s.hist_min = 0;
  s.hist_width = 1000;  // percent x100: bins of 10%
  return s;
}

}  // namespace tc::workload
