// mhealth workload generator (§6 setup): a health-monitoring wearable
// reporting 12 metrics at 50 Hz (heart rate, SpO2, skin temperature, etc.),
// chunked at Δ = 10 s — up to 500 points per chunk per metric. Values are
// synthesized as slow physiological drifts (sinusoid + noise) scaled to
// integers, matching the integer encoding TimeCrypt operates on.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "crypto/rand.hpp"
#include "index/digest.hpp"

namespace tc::workload {

struct MHealthConfig {
  uint32_t num_metrics = 12;
  double sample_hz = 50.0;
  Timestamp t0 = 0;
  uint64_t seed = 1;
};

/// One synthetic wearable. NextBatch() yields the points of all metrics for
/// a wall-clock step, interleaved per metric stream.
class MHealthGenerator {
 public:
  explicit MHealthGenerator(MHealthConfig config);

  uint32_t num_metrics() const { return config_.num_metrics; }

  /// Metric name (e.g. "heart_rate") for stream metadata.
  std::string MetricName(uint32_t metric) const;

  /// Generate the next sample for a metric (advances that metric's clock).
  index::DataPoint Next(uint32_t metric);

  /// Generate `n` consecutive samples for one metric.
  std::vector<index::DataPoint> Batch(uint32_t metric, size_t n);

  /// A digest schema suitable for vitals: sum/count/sumsq + 16-bin
  /// histogram over the physiological range.
  static index::DigestSchema VitalsSchema();

 private:
  struct MetricState {
    double phase;
    double base;
    double amplitude;
    double noise;
    Timestamp next_ts;
  };

  MHealthConfig config_;
  crypto::DeterministicRng rng_;
  std::vector<MetricState> metrics_;
};

}  // namespace tc::workload
