// DevOps workload generator (§6 setup): data-center CPU monitoring in the
// style of the Time Series Benchmark Suite — 10 metrics per host, 100
// hosts, one sample per 10 s, chunked at Δ = 1 min (6 records per chunk).
// CPU utilization is synthesized as a bounded random walk in [0, 100].
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "crypto/rand.hpp"
#include "index/digest.hpp"

namespace tc::workload {

struct DevOpsConfig {
  uint32_t num_hosts = 100;
  uint32_t num_metrics = 10;
  DurationMs sample_interval_ms = 10 * kSecond;
  Timestamp t0 = 0;
  uint64_t seed = 7;
};

class DevOpsGenerator {
 public:
  explicit DevOpsGenerator(DevOpsConfig config);

  uint32_t num_streams() const {
    return config_.num_hosts * config_.num_metrics;
  }

  /// Stream naming: "host_017/cpu_user".
  std::string StreamName(uint32_t host, uint32_t metric) const;

  /// Next sample of (host, metric); utilization percent x100 (integer).
  index::DataPoint Next(uint32_t host, uint32_t metric);

  std::vector<index::DataPoint> Batch(uint32_t host, uint32_t metric,
                                      size_t n);

  /// Digest schema for utilization: sum/count + 10 bins over [0, 100]% so
  /// "fraction of machines above 50%" (§6.3) is a frequency query.
  static index::DigestSchema CpuSchema();

 private:
  struct SeriesState {
    double level;  // current utilization in percent
    Timestamp next_ts;
  };

  SeriesState& StateOf(uint32_t host, uint32_t metric) {
    return series_[host * config_.num_metrics + metric];
  }

  DevOpsConfig config_;
  crypto::DeterministicRng rng_;
  std::vector<SeriesState> series_;
};

}  // namespace tc::workload
