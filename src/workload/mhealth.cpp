#include "workload/mhealth.hpp"

#include <cmath>

namespace tc::workload {

namespace {
constexpr const char* kMetricNames[] = {
    "heart_rate",      "spo2",          "skin_temp",    "resp_rate",
    "activity",        "steps",         "perfusion",    "bp_systolic",
    "bp_diastolic",    "galvanic_skin", "core_temp",    "hrv",
};
}  // namespace

MHealthGenerator::MHealthGenerator(MHealthConfig config)
    : config_(config), rng_(config.seed) {
  metrics_.reserve(config_.num_metrics);
  for (uint32_t m = 0; m < config_.num_metrics; ++m) {
    MetricState s;
    s.phase = rng_.NextDouble() * 2 * M_PI;
    s.base = 60.0 + 20.0 * rng_.NextDouble();       // resting level
    s.amplitude = 10.0 + 10.0 * rng_.NextDouble();  // circadian-ish swing
    s.noise = 1.0 + 2.0 * rng_.NextDouble();
    s.next_ts = config_.t0;
    metrics_.push_back(s);
  }
}

std::string MHealthGenerator::MetricName(uint32_t metric) const {
  constexpr size_t kNames = sizeof(kMetricNames) / sizeof(kMetricNames[0]);
  if (metric < kNames) return kMetricNames[metric];
  return "metric_" + std::to_string(metric);
}

index::DataPoint MHealthGenerator::Next(uint32_t metric) {
  MetricState& s = metrics_[metric];
  // Slow sinusoidal drift (period ~1 min of samples) plus Gaussian noise,
  // scaled x10 into integer units (e.g. deci-bpm).
  double t = s.phase;
  s.phase += 2 * M_PI / (60.0 * config_.sample_hz);
  double value = s.base + s.amplitude * std::sin(t) +
                 s.noise * rng_.NextGaussian();
  index::DataPoint p;
  p.timestamp_ms = s.next_ts;
  p.value = static_cast<int64_t>(value * 10.0);
  s.next_ts += static_cast<Timestamp>(1000.0 / config_.sample_hz);
  return p;
}

std::vector<index::DataPoint> MHealthGenerator::Batch(uint32_t metric,
                                                      size_t n) {
  std::vector<index::DataPoint> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next(metric));
  return out;
}

index::DigestSchema MHealthGenerator::VitalsSchema() {
  index::DigestSchema s;
  s.with_sum = s.with_count = s.with_sumsq = true;
  s.hist_bins = 16;
  s.hist_min = 0;
  s.hist_width = 100;  // deci-units: 16 bins over [0, 160) base units
  return s;
}

}  // namespace tc::workload
