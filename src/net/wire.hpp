// Wire protocol: length-prefixed frames carrying typed request/response
// messages (the prototype's Netty+protobuf layer, §5, rebuilt on POSIX
// sockets with a hand-rolled binary codec).
//
// Frame layout:  u32 body_len | u8 msg_type | u64 request_id | body
// Responses use the same frame with msg_type = kResponse and a body of
// status_code | status_msg | payload.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace tc::net {

enum class MessageType : uint8_t {
  kResponse = 0,
  kCreateStream = 1,
  kDeleteStream = 2,
  kInsertChunk = 3,
  kGetRange = 4,
  kGetStatRange = 5,
  kGetStatSeries = 6,
  kRollupStream = 7,
  kDeleteRange = 8,
  kGetStreamInfo = 9,
  kPutGrant = 10,
  kFetchGrants = 11,
  kRevokeGrant = 12,
  kPutEnvelopes = 13,
  kGetEnvelopes = 14,
  kMultiStatRange = 15,
  kPing = 16,
  // Integrity extension (src/integrity): owner-signed stream attestations
  // and Merkle-witnessed chunk reads.
  kPutAttestation = 17,
  kGetAttestation = 18,
  kGetChunkWitnessed = 19,
  // Cluster extension (src/cluster): batched single-stream ingest and
  // per-shard introspection.
  kInsertChunkBatch = 20,
  kClusterInfo = 21,
  // Replication extension (src/replica): primary→follower log shipping.
  // These target a follower's ReplicaApplier endpoint, never the cluster
  // router or a serving engine. Values 22 and 23 carried the retired
  // PR 3-era frames (kReplicaOps before it grew a shard field, and the
  // monolithic kReplicaSnapshot superseded by the chunked Begin/Chunk/End
  // stream); both stay reserved so old captures cannot be misparsed as
  // the new layouts.
  // Follower-daemon topology (src/replica): a follower process registers
  // with the primary (kReplicaHello, sent to the primary's serving port),
  // the primary dials back and catches it up with a bounded-memory chunk
  // stream, then keeps it alive with group-status heartbeats.
  kReplicaHello = 24,
  kReplicaSnapshotBegin = 25,
  kReplicaSnapshotChunk = 26,
  kReplicaSnapshotEnd = 27,
  kReplicaHeartbeat = 28,
  kReplicaOps = 29,
};

/// Server-side dispatch: handle one decoded request, produce a response
/// payload. Implementations must be thread-safe (TCP server is
/// connection-per-thread).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Result<Bytes> Handle(MessageType type, BytesView body) = 0;
};

/// Client-side transport: send one request, await the response payload.
/// Call() is thread-safe in all implementations.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<Bytes> Call(MessageType type, BytesView body) = 0;
};

/// Zero-copy in-process transport: directly invokes the handler. Used by
/// microbenchmarks (the paper's microbenchmarks exclude network delay) and
/// by tests that don't need sockets.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::shared_ptr<RequestHandler> handler)
      : handler_(std::move(handler)) {}

  Result<Bytes> Call(MessageType type, BytesView body) override {
    return handler_->Handle(type, body);
  }

 private:
  std::shared_ptr<RequestHandler> handler_;
};

/// Encode a frame (request or response) into bytes ready for the socket.
Bytes EncodeFrame(MessageType type, uint64_t request_id, BytesView body);

/// Encode the standard response body.
Bytes EncodeResponseBody(const Status& status, BytesView payload);

/// Decode a response body back into (status, payload).
Result<Bytes> DecodeResponseBody(BytesView body);

}  // namespace tc::net
