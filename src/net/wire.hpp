// Wire protocol: length-prefixed frames carrying typed request/response
// messages (the prototype's Netty+protobuf layer, §5, rebuilt on POSIX
// sockets with a hand-rolled binary codec).
//
// Frame layout:  u32 body_len | u8 msg_type | u64 request_id |
//                u64 trace_id | u64 parent_span_id | body
// Responses use the same frame with msg_type = kResponse and a body of
// status_code | status_msg | payload.
//
// trace_id / parent_span_id carry the distributed trace context across
// every hop (client → router → shard engine → follower): a server adopts a
// nonzero trace_id as-is (falling back to its origin-derived id otherwise),
// and spans opened while handling the request parent under parent_span_id,
// so `tccli trace` can stitch one tree from spans collected on every
// process that touched the request. Zero means "no context".
//
// The transport API is asynchronous and request-id multiplexed: AsyncCall
// returns a PendingCall immediately, many calls can be in flight on one
// connection, and responses match back to their calls by request id in any
// order (the pipelining the paper's Netty stack gets for free, §5).
// Call() is a thin blocking wrapper over AsyncCall for call sites that
// want one round trip.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace tc::net {

enum class MessageType : uint8_t {
  kResponse = 0,
  kCreateStream = 1,
  kDeleteStream = 2,
  kInsertChunk = 3,
  kGetRange = 4,
  kGetStatRange = 5,
  kGetStatSeries = 6,
  kRollupStream = 7,
  kDeleteRange = 8,
  kGetStreamInfo = 9,
  kPutGrant = 10,
  kFetchGrants = 11,
  kRevokeGrant = 12,
  kPutEnvelopes = 13,
  kGetEnvelopes = 14,
  kMultiStatRange = 15,
  kPing = 16,
  // Integrity extension (src/integrity): owner-signed stream attestations
  // and Merkle-witnessed chunk reads.
  kPutAttestation = 17,
  kGetAttestation = 18,
  kGetChunkWitnessed = 19,
  // Cluster extension (src/cluster): batched single-stream ingest and
  // per-shard introspection.
  kInsertChunkBatch = 20,
  kClusterInfo = 21,
  // Replication extension (src/replica): primary→follower log shipping.
  // These target a follower's ReplicaApplier endpoint, never the cluster
  // router or a serving engine. Values 22 and 23 carried the retired
  // PR 3-era frames (kReplicaOps before it grew a shard field, and the
  // monolithic kReplicaSnapshot superseded by the chunked Begin/Chunk/End
  // stream); both stay reserved so old captures cannot be misparsed as
  // the new layouts.
  // Follower-daemon topology (src/replica): a follower process registers
  // with the primary (kReplicaHello, sent to the primary's serving port),
  // the primary dials back and catches it up with a bounded-memory chunk
  // stream, then keeps it alive with group-status heartbeats.
  kReplicaHello = 24,
  kReplicaSnapshotBegin = 25,
  kReplicaSnapshotChunk = 26,
  kReplicaSnapshotEnd = 27,
  kReplicaHeartbeat = 28,
  kReplicaOps = 29,
  // Observability extension (src/common/metrics): snapshot of the
  // process-wide metrics registry (counters, gauges, latency histograms).
  kMetricsInfo = 30,
  // Observability extension (src/common/trace): drain the process-wide
  // span ring (kTraceInfo, optionally filtered to one trace id) and the
  // structured event journal (kEventsInfo). Both are reads — `tccli trace`
  // must never queue behind a pipelined ingest stream.
  kTraceInfo = 31,
  kEventsInfo = 32,
};

/// Stable snake_case name for one message type ("insert_chunk",
/// "get_stat_range", ...) — the `type` label on per-request metrics and the
/// op name on slow-op trace lines. Unknown values map to "unknown".
const char* MessageTypeName(MessageType type);

/// True for message types that mutate server state. The TCP server keeps
/// same-connection mutations in arrival order (a pipelined ingest stream
/// must apply batch N before batch N+1; replica op shipments must apply in
/// sequence) while non-mutating requests dispatch concurrently — a slow
/// query cannot head-of-line-block a Ping on the same connection.
/// Unrecognised types are conservatively treated as mutations.
bool IsMutation(MessageType type);

/// Server-side dispatch: handle one decoded request, produce a response
/// payload. Implementations must be thread-safe — the TCP server dispatches
/// requests from many connections (and non-mutating requests from the same
/// connection) concurrently.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual Result<Bytes> Handle(MessageType type, BytesView body) = 0;
};

namespace detail {
struct CallState;
}

/// Completion handle for one asynchronous transport call. Cheap to copy
/// (shared state); safe to Wait from any thread, and safe to keep after the
/// transport that issued it is destroyed (the transport fails its pending
/// calls before going away).
class PendingCall {
 public:
  /// Default-constructed handles are empty; Wait() on one reports Internal.
  PendingCall() = default;

  /// Block until the response (or the transport error that replaced it)
  /// arrives. Idempotent — repeated waits return the same result.
  TC_BLOCKING [[nodiscard]] Result<Bytes> Wait() const;

  /// Non-blocking probe: the result if the call has completed, nullopt
  /// while still in flight.
  [[nodiscard]] std::optional<Result<Bytes>> TryGet() const;

  /// True once the call has a result.
  bool done() const;

 private:
  friend class CallCompleter;
  explicit PendingCall(std::shared_ptr<detail::CallState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::CallState> state_;
};

/// Completion callback, invoked exactly once when the call completes — on
/// the transport's reader thread (TcpClient), an executor thread (shard
/// channels), or inline inside AsyncCall (InProcTransport, transport
/// errors). Must not block and must not call back into the transport.
using CallCallback = std::function<void(const Result<Bytes>&)>;

/// Producer side of a PendingCall: transports make one per request and
/// complete it when the response (or a connection error) arrives. Copyable;
/// the first Complete wins, later ones are ignored.
class CallCompleter {
 public:
  explicit CallCompleter(CallCallback callback = nullptr);

  PendingCall pending() const { return PendingCall(state_); }
  void Complete(Result<Bytes> result) const;

 private:
  std::shared_ptr<detail::CallState> state_;
};

/// Client-side transport. AsyncCall sends one request and returns a handle
/// immediately; implementations support many concurrent in-flight calls
/// (the request body is consumed before AsyncCall returns — the view need
/// not outlive the call). Both entry points are thread-safe in all
/// implementations.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual PendingCall AsyncCall(MessageType type, BytesView body,
                                CallCallback on_done = nullptr) = 0;

  /// Blocking convenience wrapper: one request, await its response.
  TC_BLOCKING Result<Bytes> Call(MessageType type, BytesView body) {
    return AsyncCall(type, body).Wait();
  }
};

/// Zero-copy in-process transport: directly invokes the handler; the call
/// completes before AsyncCall returns. Used by microbenchmarks (the paper's
/// microbenchmarks exclude network delay) and by tests that don't need
/// sockets.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::shared_ptr<RequestHandler> handler)
      : handler_(std::move(handler)) {}

  PendingCall AsyncCall(MessageType type, BytesView body,
                        CallCallback on_done = nullptr) override {
    CallCompleter completer(std::move(on_done));
    completer.Complete(handler_->Handle(type, body));
    return completer.pending();
  }

 private:
  std::shared_ptr<RequestHandler> handler_;
};

/// Fixed frame header as it appears on the wire (exposed for tests and the
/// frame fuzzers).
struct FrameHeader {
  uint32_t body_len = 0;
  MessageType type = MessageType::kResponse;
  uint64_t request_id = 0;
  // Distributed trace context (0 = none): the origin trace id and the span
  // the request descends from on the sending process.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

inline constexpr size_t kFrameHeaderBytes = 29;

/// Default per-frame body cap. The header's body_len is attacker-controlled
/// u32; every decoder bounds it before allocating (both transport ends take
/// a configurable max).
inline constexpr size_t kDefaultMaxFrameBody = 512u << 20;

/// Decode the fixed 29-byte header, rejecting bodies larger than `max_body`
/// with a clean status (never an allocation).
Result<FrameHeader> DecodeFrameHeader(BytesView header,
                                      size_t max_body = kDefaultMaxFrameBody);

/// Encode a frame (request or response) into bytes ready for the socket.
/// trace_id/parent_span_id default to 0 ("no context") — the TCP client
/// stamps the caller's live trace context on outgoing requests.
Bytes EncodeFrame(MessageType type, uint64_t request_id, BytesView body,
                  uint64_t trace_id = 0, uint64_t parent_span_id = 0);

/// Encode the standard response body.
Bytes EncodeResponseBody(const Status& status, BytesView payload);

/// Decode a response body back into (status, payload).
Result<Bytes> DecodeResponseBody(BytesView body);

}  // namespace tc::net
