#include "net/executor.hpp"

namespace tc::net {

Executor::Executor(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // With zero workers nothing drains the queue on stop; there is also
  // nothing that could still be enqueueing, so run the leftovers here.
  for (auto& task : queue_) task();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Executor::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

}  // namespace tc::net
