#include "net/executor.hpp"

namespace tc::net {

Executor::Executor(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
  // With zero workers nothing drains the queue on stop; there is also
  // nothing that could still be enqueueing, so run the leftovers here.
  // Swapped out under the lock, run unlocked: foreign task code must never
  // execute under the queue lock.
  std::deque<std::function<void()>> leftovers;
  {
    MutexLock lock(mu_);
    leftovers.swap(queue_);
  }
  for (auto& task : leftovers) task();
}

void Executor::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void Executor::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

}  // namespace tc::net
