#include "net/executor.hpp"

#include <string>

namespace tc::net {

Executor::Executor(size_t num_threads, const char* pool_name) {
  if (metrics::kEnabled && pool_name != nullptr) {
    std::string labels = std::string("pool=\"") + pool_name + "\"";
    queue_depth_ = &metrics::GetGauge("tc_executor_queue_depth", labels);
    dispatch_wait_ =
        &metrics::GetHistogram("tc_executor_dispatch_wait_seconds", labels);
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& t : threads_) t.join();
  // With zero workers nothing drains the queue on stop; there is also
  // nothing that could still be enqueueing, so run the leftovers here.
  // Swapped out under the lock, run unlocked: foreign task code must never
  // execute under the queue lock.
  std::deque<Task> leftovers;
  {
    MutexLock lock(mu_);
    leftovers.swap(queue_);
  }
  for (auto& task : leftovers) RunTask(task);
}

void Executor::RunTask(Task& task) {
  if (dispatch_wait_ != nullptr) {
    auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - task.enqueued);
    dispatch_wait_->Record(
        waited.count() < 0 ? 0 : static_cast<uint64_t>(waited.count()));
  }
  if (queue_depth_ != nullptr) queue_depth_->Dec();
  task.fn();
}

void Executor::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
  }
}

void Executor::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  Task entry;
  entry.fn = std::move(task);
  if (dispatch_wait_ != nullptr) {
    entry.enqueued = std::chrono::steady_clock::now();
  }
  if (queue_depth_ != nullptr) queue_depth_->Inc();
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(entry));
  }
  cv_.NotifyOne();
}

}  // namespace tc::net
