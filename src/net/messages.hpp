// Typed request/response messages for TimeCrypt's API (Table 1), with
// binary codecs. Each struct has Encode()/Decode() so both transports and
// tests can round-trip them.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/time.hpp"
#include "index/digest.hpp"
#include "net/wire.hpp"

namespace tc::net {

/// Which digest cipher a stream uses — the server needs this to pick the
/// homomorphic Add for index maintenance (public parameters only).
enum class CipherKind : uint8_t {
  kPlain = 0,
  kHeac = 1,
  kPaillier = 2,
  kEcElGamal = 3,
};

std::string_view CipherKindName(CipherKind kind);

/// Stream configuration, fixed at creation (§4.6: per-stream chunk interval,
/// compression, operators/digest layout).
struct StreamConfig {
  std::string name;                 // human-readable metric/source metadata
  Timestamp t0 = 0;                 // stream start
  DurationMs delta_ms = 10'000;     // chunk interval Δ
  index::DigestSchema schema;       // digest operators
  CipherKind cipher = CipherKind::kHeac;
  Bytes cipher_public;              // strawman public params (empty otherwise)
  uint32_t fanout = 64;             // index tree k
  uint8_t compression = 1;          // chunk::Compression
  // Integrity extension: the server mirrors a Merkle witness tree over the
  // sealed chunks and serves audit paths for verified reads (opt-in — adds
  // one SHA-256 per chunk to the ingest path).
  bool integrity = false;

  void Encode(BinaryWriter& w) const;
  static Result<StreamConfig> Decode(BinaryReader& r);

  friend bool operator==(const StreamConfig&, const StreamConfig&) = default;
};

struct CreateStreamRequest {
  uint64_t uuid = 0;
  StreamConfig config;

  Bytes Encode() const;
  static Result<CreateStreamRequest> Decode(BytesView in);
};

struct DeleteStreamRequest {
  uint64_t uuid = 0;

  Bytes Encode() const;
  static Result<DeleteStreamRequest> Decode(BytesView in);
};

struct InsertChunkRequest {
  uint64_t uuid = 0;
  uint64_t chunk_index = 0;
  Bytes digest_blob;   // encrypted digest for the index
  Bytes payload;       // sealed compressed points (may be empty: digest-only)

  Bytes Encode() const;
  static Result<InsertChunkRequest> Decode(BytesView in);
};

/// Batched single-stream ingest (§4.6 scalability): many sealed chunks in
/// one frame, amortizing framing, dispatch, the per-stream lock, and (on
/// durable stores) the log sync across the batch. Entries must carry
/// strictly increasing chunk indices — the stream is append-only, so an
/// out-of-order or overlapping batch is malformed, and Decode rejects it.
struct InsertChunkBatchRequest {
  struct Entry {
    uint64_t chunk_index = 0;
    Bytes digest_blob;
    Bytes payload;
  };
  uint64_t uuid = 0;
  std::vector<Entry> entries;

  Bytes Encode() const;
  static Result<InsertChunkBatchRequest> Decode(BytesView in);
};

/// Per-shard stream counts, index sizes, and replication health (cluster
/// introspection). A standalone engine answers with one entry and zeroed
/// replication fields; the shard router scatter-gathers one entry per shard.
struct ClusterInfoResponse {
  /// ShardInfo::ack_mode values (mirrors replica::AckMode; the wire layer
  /// carries the raw byte so tc_net does not depend on tc_replica).
  static constexpr uint8_t kAckAsync = 0;
  static constexpr uint8_t kAckQuorum = 1;

  struct ShardInfo {
    uint32_t shard = 0;
    uint64_t num_streams = 0;
    uint64_t index_bytes = 0;
    // Replication health: follower count, ack discipline, and the widest
    // follower lag in ops (0 when replicas == 0 or all caught up).
    uint32_t replicas = 0;
    uint8_t ack_mode = kAckAsync;
    uint64_t max_lag_ops = 0;
    // Daemon topology + failover health: socket-registered follower
    // processes, whether heartbeat-driven failover is armed, how many
    // promotions this shard has survived, and how many bounded snapshot
    // chunks catch-up has shipped (the streaming-catch-up witness).
    uint32_t remote_followers = 0;
    uint8_t auto_failover = 0;
    uint32_t promotions = 0;
    uint64_t snapshot_chunks = 0;
    // Backing-store compaction pressure (LogKvStore shards): dead value
    // bytes awaiting compaction and compaction passes run so far. Zeros
    // for volatile stores.
    uint64_t store_dead_bytes = 0;
    uint32_t store_compactions = 0;
  };
  std::vector<ShardInfo> shards;

  Bytes Encode() const;
  static Result<ClusterInfoResponse> Decode(BytesView in);
};

/// Snapshot of the process-wide metrics registry (kMetricsInfo; request body
/// is empty). Counters and gauges carry `value`; histograms carry the count/
/// sum/max and precomputed quantiles, all in the histogram's native unit
/// (microseconds for *_seconds families).
struct MetricsInfoResponse {
  static constexpr uint8_t kCounter = 0;
  static constexpr uint8_t kGauge = 1;
  static constexpr uint8_t kHistogram = 2;

  struct Entry {
    uint8_t kind = kCounter;
    std::string name;    // snake_case family name
    std::string labels;  // 'k="v",...' without braces; may be empty
    int64_t value = 0;   // counter/gauge
    uint64_t count = 0;  // histogram fields
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0, p95 = 0, p99 = 0;
  };
  std::vector<Entry> entries;

  /// Snapshot every metric the registry holds (empty under TC_METRICS=OFF).
  static MetricsInfoResponse FromRegistry();

  Bytes Encode() const;
  static Result<MetricsInfoResponse> Decode(BytesView in);
};

/// Drain the process-wide span ring (kTraceInfo). `trace_id != 0` filters to
/// one trace; `slow_only` keeps only spans past the slow-op threshold.
struct TraceInfoRequest {
  uint64_t trace_id = 0;
  uint8_t slow_only = 0;

  Bytes Encode() const;
  static Result<TraceInfoRequest> Decode(BytesView in);
};

struct TraceInfoResponse {
  struct Span {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
    std::string op;       // snake_case literal (message-type / stage name)
    uint8_t msg_type = 0; // raw MessageType byte, 0 when not a request span
    uint32_t shard = 0xffffffffu;  // trace::kNoShard when shardless
    int64_t start_us = 0;          // wall clock, us since the Unix epoch
    uint64_t duration_us = 0;
    uint8_t slow = 0;
  };
  std::vector<Span> spans;
  uint64_t dropped = 0;  // spans evicted by ring wrap since process start

  /// Snapshot the process ring, applying the request's filters.
  static TraceInfoResponse FromRing(const TraceInfoRequest& req);

  Bytes Encode() const;
  static Result<TraceInfoResponse> Decode(BytesView in);
};

/// Structured event journal query (kEventsInfo): lifecycle events with
/// seq >= min_seq, oldest first.
struct EventsInfoRequest {
  uint64_t min_seq = 0;

  Bytes Encode() const;
  static Result<EventsInfoRequest> Decode(BytesView in);
};

struct EventsInfoResponse {
  struct Event {
    uint64_t seq = 0;
    int64_t wall_ms = 0;  // wall clock, ms since the Unix epoch
    std::string kind;     // snake_case event class
    uint32_t shard = 0;
    std::string detail;
  };
  std::vector<Event> events;
  uint64_t dropped = 0;  // events evicted by the capacity bound

  /// Snapshot the process journal from min_seq.
  static EventsInfoResponse FromJournal(const EventsInfoRequest& req);

  Bytes Encode() const;
  static Result<EventsInfoResponse> Decode(BytesView in);
};

struct GetRangeRequest {
  uint64_t uuid = 0;
  TimeRange range;

  Bytes Encode() const;
  static Result<GetRangeRequest> Decode(BytesView in);
};

struct GetRangeResponse {
  struct ChunkData {
    uint64_t chunk_index = 0;
    Bytes payload;
  };
  std::vector<ChunkData> chunks;

  Bytes Encode() const;
  static Result<GetRangeResponse> Decode(BytesView in);
};

struct StatRangeRequest {
  uint64_t uuid = 0;
  TimeRange range;

  Bytes Encode() const;
  static Result<StatRangeRequest> Decode(BytesView in);
};

/// Aggregate over [first_chunk, last_chunk) — the decryptor needs the chunk
/// bounds to pick its outer keys.
struct StatRangeResponse {
  uint64_t first_chunk = 0;
  uint64_t last_chunk = 0;
  Bytes aggregate_blob;

  Bytes Encode() const;
  static Result<StatRangeResponse> Decode(BytesView in);
};

/// Series of fixed-granularity aggregates (visualization / Fig 8 views):
/// one aggregate per `granularity_chunks` window across the range.
struct StatSeriesRequest {
  uint64_t uuid = 0;
  TimeRange range;
  uint64_t granularity_chunks = 1;

  Bytes Encode() const;
  static Result<StatSeriesRequest> Decode(BytesView in);
};

struct StatSeriesResponse {
  uint64_t first_chunk = 0;
  uint64_t last_chunk = 0;  // exclusive; the final window clips to this
  uint64_t granularity_chunks = 1;
  std::vector<Bytes> aggregates;  // consecutive windows

  Bytes Encode() const;
  static Result<StatSeriesResponse> Decode(BytesView in);
};

/// Inter-stream aggregate (§4.3): server sums the per-stream aggregates;
/// only a principal holding keys for all streams can decrypt.
struct MultiStatRangeRequest {
  std::vector<uint64_t> uuids;
  TimeRange range;

  Bytes Encode() const;
  static Result<MultiStatRangeRequest> Decode(BytesView in);
};

struct RollupStreamRequest {
  uint64_t source_uuid = 0;
  uint64_t target_uuid = 0;      // derived stream to create
  uint64_t granularity_chunks = 0;  // aggregation factor
  TimeRange range;               // segment to roll up ({0,0} = everything)

  Bytes Encode() const;
  static Result<RollupStreamRequest> Decode(BytesView in);
};

struct DeleteRangeRequest {
  uint64_t uuid = 0;
  TimeRange range;

  Bytes Encode() const;
  static Result<DeleteRangeRequest> Decode(BytesView in);
};

struct StreamInfoResponse {
  StreamConfig config;
  uint64_t num_chunks = 0;

  Bytes Encode() const;
  static Result<StreamInfoResponse> Decode(BytesView in);
};

// ------------------------------------------------------------- key store

/// A sealed grant stored at the server's key store (§3.2). The server never
/// sees inside `sealed_grant` — it is encrypted to the principal's key.
struct PutGrantRequest {
  uint64_t uuid = 0;
  std::string principal_id;
  uint64_t grant_id = 0;
  Bytes sealed_grant;

  Bytes Encode() const;
  static Result<PutGrantRequest> Decode(BytesView in);
};

struct FetchGrantsRequest {
  std::string principal_id;

  Bytes Encode() const;
  static Result<FetchGrantsRequest> Decode(BytesView in);
};

struct FetchGrantsResponse {
  struct Entry {
    uint64_t uuid = 0;
    uint64_t grant_id = 0;
    Bytes sealed_grant;
  };
  std::vector<Entry> grants;

  Bytes Encode() const;
  static Result<FetchGrantsResponse> Decode(BytesView in);
};

struct RevokeGrantRequest {
  uint64_t uuid = 0;
  std::string principal_id;
  uint64_t grant_id = 0;  // 0 = all grants of this principal on this stream

  Bytes Encode() const;
  static Result<RevokeGrantRequest> Decode(BytesView in);
};

/// Resolution-keystream envelopes (§4.4.2): enc_k̄j(k_{j·r}) blobs stored
/// under (stream, resolution, index).
struct PutEnvelopesRequest {
  uint64_t uuid = 0;
  uint64_t resolution_chunks = 0;
  uint64_t first_index = 0;
  std::vector<Bytes> envelopes;

  Bytes Encode() const;
  static Result<PutEnvelopesRequest> Decode(BytesView in);
};

struct GetEnvelopesRequest {
  uint64_t uuid = 0;
  uint64_t resolution_chunks = 0;
  uint64_t first_index = 0;
  uint64_t last_index = 0;  // inclusive

  Bytes Encode() const;
  static Result<GetEnvelopesRequest> Decode(BytesView in);
};

struct GetEnvelopesResponse {
  uint64_t first_index = 0;
  std::vector<Bytes> envelopes;

  Bytes Encode() const;
  static Result<GetEnvelopesResponse> Decode(BytesView in);
};

// ---------------------------------------------------- integrity extension
// Attestation blobs stay opaque at the wire layer (encoded/decoded by
// src/integrity) so tc_net does not depend on tc_integrity.

/// Owner publishes a signed stream-head attestation.
struct PutAttestationRequest {
  uint64_t uuid = 0;
  Bytes attestation;

  Bytes Encode() const;
  static Result<PutAttestationRequest> Decode(BytesView in);
};

/// Fetch the latest attestation published for a stream.
struct GetAttestationRequest {
  uint64_t uuid = 0;

  Bytes Encode() const;
  static Result<GetAttestationRequest> Decode(BytesView in);
};

/// Witnessed chunk read: chunks [first_chunk, last_chunk) together with
/// audit paths against the witness tree over the first `at_size` chunks
/// (the attested prefix the consumer holds a signature for).
struct GetChunkWitnessedRequest {
  uint64_t uuid = 0;
  uint64_t first_chunk = 0;
  uint64_t last_chunk = 0;
  uint64_t at_size = 0;

  Bytes Encode() const;
  static Result<GetChunkWitnessedRequest> Decode(BytesView in);
};

struct GetChunkWitnessedResponse {
  struct Entry {
    uint64_t chunk_index = 0;
    Bytes digest_blob;
    Bytes payload;
    Bytes proof;  // integrity::AuditPath wire encoding
  };
  std::vector<Entry> entries;

  Bytes Encode() const;
  static Result<GetChunkWitnessedResponse> Decode(BytesView in);
};

// ---------------------------------------------------- replication extension
// Primary→follower log shipping (src/replica). Replicated state is all
// ciphertext and encrypted digests — the server is untrusted end-to-end, so
// copying it to more untrusted nodes changes nothing about confidentiality.

/// Mutation kinds carried by ReplicaOpsRequest entries.
inline constexpr uint8_t kReplicaOpPut = 1;
inline constexpr uint8_t kReplicaOpDelete = 2;

/// A contiguous run of sequence-numbered mutations: entry i carries
/// sequence number first_seq + i. Followers apply strictly in order, so a
/// follower's store is always a prefix of the primary's mutation history.
/// `shard` routes the frame inside a follower daemon replicating several
/// shards over one endpoint.
struct ReplicaOpsRequest {
  struct Op {
    uint8_t kind = kReplicaOpPut;
    std::string key;
    Bytes value;  // empty for deletes

    friend bool operator==(const Op&, const Op&) = default;
  };
  uint32_t shard = 0;
  uint64_t first_seq = 0;
  std::vector<Op> ops;

  Bytes Encode() const;
  static Result<ReplicaOpsRequest> Decode(BytesView in);
};

// Chunked snapshot catch-up: Begin pins the snapshot's sequence number,
// Chunk frames carry bounded (key, value) batches, End reconciles (deletes
// follower keys the stream never named, so diverged stores reconverge).
// Neither side ever materializes the full store: the shipper walks the key
// list batch by batch, the applier writes each chunk straight into its
// store and only retains the key set for the End reconciliation. A Begin
// that repeats the in-progress seq resumes after the last received chunk
// (reconnect after a dropped transport), because an unchanged seq means an
// unchanged store and therefore an unchanged, deterministic key order.

struct ReplicaSnapshotBeginRequest {
  uint32_t shard = 0;
  /// Shipping-pipeline identity (random per primary incarnation): a stream
  /// may only resume under the pipeline that started it — after failover
  /// the new primary restarts sequence numbering, so seq alone could
  /// collide with a half-received stream from the dead primary.
  uint64_t origin = 0;
  uint64_t seq = 0;

  Bytes Encode() const;
  static Result<ReplicaSnapshotBeginRequest> Decode(BytesView in);
};

struct ReplicaSnapshotChunkRequest {
  uint32_t shard = 0;
  uint64_t seq = 0;
  /// Position of entries.front() in the overall snapshot stream.
  uint64_t first_index = 0;
  std::vector<std::pair<std::string, Bytes>> entries;

  Bytes Encode() const;
  static Result<ReplicaSnapshotChunkRequest> Decode(BytesView in);
};

struct ReplicaSnapshotEndRequest {
  uint32_t shard = 0;
  uint64_t seq = 0;
  /// Total entries shipped; the applier cross-checks its received count.
  uint64_t total_entries = 0;

  Bytes Encode() const;
  static Result<ReplicaSnapshotEndRequest> Decode(BytesView in);
};

/// Reply to SnapshotBegin (entries = resume point: how many stream entries
/// the follower already holds for this seq) and SnapshotChunk (entries =
/// cumulative entries received, which the shipper verifies).
struct ReplicaSnapshotAckResponse {
  uint64_t entries = 0;

  Bytes Encode() const;
  static Result<ReplicaSnapshotAckResponse> Decode(BytesView in);
};

/// Follower's reply to kReplicaOps / kReplicaSnapshotEnd / kReplicaHeartbeat.
struct ReplicaAckResponse {
  uint64_t applied_seq = 0;

  Bytes Encode() const;
  static Result<ReplicaAckResponse> Decode(BytesView in);
};

/// Follower-daemon registration, sent by the follower to the primary's
/// serving port. Carries where the primary should dial back (host/port of
/// the follower's replication endpoint), which shard it replicates, how far
/// it has applied, and a fingerprint of its persisted shard layout so a
/// store formatted for a different cluster shape is rejected instead of
/// silently reconciled (0 = empty store, always accepted).
struct ReplicaHelloRequest {
  uint32_t shard = 0;
  /// The follower's total shard count. Placement is a pure hash of
  /// (uuid, N): a follower laid out for a different N would replicate and
  /// serve the wrong subset, so the primary rejects a mismatch outright —
  /// the fingerprint gate only covers non-empty stores.
  uint32_t num_shards = 1;
  uint64_t applied_seq = 0;
  uint64_t store_fingerprint = 0;
  std::string host;
  uint32_t port = 0;

  Bytes Encode() const;
  static Result<ReplicaHelloRequest> Decode(BytesView in);
};

struct ReplicaHelloResponse {
  uint64_t head_seq = 0;       // primary's current head for the shard
  uint32_t heartbeat_ms = 0;   // primary's heartbeat cadence

  Bytes Encode() const;
  static Result<ReplicaHelloResponse> Decode(BytesView in);
};

/// Primary → follower liveness beacon carrying the shard's group view:
/// every registered follower endpoint and its applied seq. Followers use
/// the last view to elect the most-caught-up survivor when the beacons
/// stop (primary loss → automatic promotion).
struct ReplicaHeartbeatRequest {
  struct Peer {
    std::string host;
    uint32_t port = 0;
    uint64_t applied_seq = 0;

    friend bool operator==(const Peer&, const Peer&) = default;
  };
  uint32_t shard = 0;
  uint64_t head_seq = 0;
  std::vector<Peer> peers;

  Bytes Encode() const;
  static Result<ReplicaHeartbeatRequest> Decode(BytesView in);
};

}  // namespace tc::net
