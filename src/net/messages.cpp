#include "net/messages.hpp"

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace tc::net {

std::string_view CipherKindName(CipherKind kind) {
  switch (kind) {
    case CipherKind::kPlain: return "Plaintext";
    case CipherKind::kHeac: return "TimeCrypt";
    case CipherKind::kPaillier: return "Paillier";
    case CipherKind::kEcElGamal: return "EC-ElGamal";
  }
  return "?";
}

namespace {
/// Shared helpers for the repetitive encode/decode bodies.
void EncodeRange(BinaryWriter& w, const TimeRange& r) {
  w.PutI64(r.start);
  w.PutI64(r.end);
}

Result<TimeRange> DecodeRange(BinaryReader& r) {
  TimeRange out;
  TC_ASSIGN_OR_RETURN(out.start, r.GetI64());
  TC_ASSIGN_OR_RETURN(out.end, r.GetI64());
  return out;
}

/// Validate a hostile element count before reserving: every element consumes
/// at least one input byte, so any claimed count beyond the remaining bytes
/// is an allocation bomb, not a well-formed message.
Result<size_t> CheckedCount(uint64_t claimed, const BinaryReader& r) {
  if (claimed > r.remaining()) return DataLoss("element count exceeds input");
  return static_cast<size_t>(claimed);
}
}  // namespace

void StreamConfig::Encode(BinaryWriter& w) const {
  w.PutString(name);
  w.PutI64(t0);
  w.PutI64(delta_ms);
  Bytes schema_bytes;
  schema.Serialize(schema_bytes);
  w.PutBytes(schema_bytes);
  w.PutU8(static_cast<uint8_t>(cipher));
  w.PutBytes(cipher_public);
  w.PutU32(fanout);
  w.PutU8(compression);
  w.PutU8(integrity ? 1 : 0);
}

Result<StreamConfig> StreamConfig::Decode(BinaryReader& r) {
  StreamConfig c;
  TC_ASSIGN_OR_RETURN(c.name, r.GetString());
  TC_ASSIGN_OR_RETURN(c.t0, r.GetI64());
  TC_ASSIGN_OR_RETURN(c.delta_ms, r.GetI64());
  TC_ASSIGN_OR_RETURN(Bytes schema_bytes, r.GetBytes());
  size_t pos = 0;
  TC_ASSIGN_OR_RETURN(c.schema, index::DigestSchema::Deserialize(schema_bytes, pos));
  TC_ASSIGN_OR_RETURN(uint8_t cipher, r.GetU8());
  c.cipher = static_cast<CipherKind>(cipher);
  TC_ASSIGN_OR_RETURN(c.cipher_public, r.GetBytes());
  TC_ASSIGN_OR_RETURN(c.fanout, r.GetU32());
  TC_ASSIGN_OR_RETURN(c.compression, r.GetU8());
  TC_ASSIGN_OR_RETURN(uint8_t integrity, r.GetU8());
  c.integrity = integrity != 0;
  return c;
}

Bytes CreateStreamRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  config.Encode(w);
  return std::move(w).Take();
}

Result<CreateStreamRequest> CreateStreamRequest::Decode(BytesView in) {
  BinaryReader r(in);
  CreateStreamRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.config, StreamConfig::Decode(r));
  return req;
}

Bytes DeleteStreamRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  return std::move(w).Take();
}

Result<DeleteStreamRequest> DeleteStreamRequest::Decode(BytesView in) {
  BinaryReader r(in);
  DeleteStreamRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  return req;
}

Bytes InsertChunkRequest::Encode() const {
  BinaryWriter w(digest_blob.size() + payload.size() + 32);
  w.PutU64(uuid);
  w.PutU64(chunk_index);
  w.PutBytes(digest_blob);
  w.PutBytes(payload);
  return std::move(w).Take();
}

Result<InsertChunkRequest> InsertChunkRequest::Decode(BytesView in) {
  BinaryReader r(in);
  InsertChunkRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.chunk_index, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.digest_blob, r.GetBytes());
  TC_ASSIGN_OR_RETURN(req.payload, r.GetBytes());
  return req;
}

Bytes InsertChunkBatchRequest::Encode() const {
  size_t payload_bytes = 0;
  for (const auto& e : entries) {
    payload_bytes += e.digest_blob.size() + e.payload.size() + 32;
  }
  BinaryWriter w(payload_bytes + 16);
  w.PutU64(uuid);
  w.PutVar(entries.size());
  for (const auto& e : entries) {
    w.PutU64(e.chunk_index);
    w.PutBytes(e.digest_blob);
    w.PutBytes(e.payload);
  }
  return std::move(w).Take();
}

Result<InsertChunkBatchRequest> InsertChunkBatchRequest::Decode(BytesView in) {
  BinaryReader r(in);
  InsertChunkBatchRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  req.entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Entry e;
    TC_ASSIGN_OR_RETURN(e.chunk_index, r.GetU64());
    TC_ASSIGN_OR_RETURN(e.digest_blob, r.GetBytes());
    TC_ASSIGN_OR_RETURN(e.payload, r.GetBytes());
    // Append-only invariant: indices strictly increase within a batch.
    // Overlapping or reordered entries are a malformed frame, not a
    // server-side state error.
    if (i > 0 && e.chunk_index <= req.entries.back().chunk_index) {
      return InvalidArgument("batch chunk indices must strictly increase");
    }
    req.entries.push_back(std::move(e));
  }
  return req;
}

Bytes ClusterInfoResponse::Encode() const {
  BinaryWriter w;
  w.PutVar(shards.size());
  for (const auto& s : shards) {
    w.PutU32(s.shard);
    w.PutU64(s.num_streams);
    w.PutU64(s.index_bytes);
    w.PutU32(s.replicas);
    w.PutU8(s.ack_mode);
    w.PutU64(s.max_lag_ops);
    w.PutU32(s.remote_followers);
    w.PutU8(s.auto_failover);
    w.PutU32(s.promotions);
    w.PutU64(s.snapshot_chunks);
    w.PutU64(s.store_dead_bytes);
    w.PutU32(s.store_compactions);
  }
  return std::move(w).Take();
}

Result<ClusterInfoResponse> ClusterInfoResponse::Decode(BytesView in) {
  BinaryReader r(in);
  ClusterInfoResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  resp.shards.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ClusterInfoResponse::ShardInfo s;
    TC_ASSIGN_OR_RETURN(s.shard, r.GetU32());
    TC_ASSIGN_OR_RETURN(s.num_streams, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.index_bytes, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.replicas, r.GetU32());
    TC_ASSIGN_OR_RETURN(s.ack_mode, r.GetU8());
    if (s.ack_mode > kAckQuorum) {
      return InvalidArgument("unknown replica ack mode");
    }
    TC_ASSIGN_OR_RETURN(s.max_lag_ops, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.remote_followers, r.GetU32());
    TC_ASSIGN_OR_RETURN(s.auto_failover, r.GetU8());
    if (s.auto_failover > 1) {
      return InvalidArgument("auto_failover is a boolean flag");
    }
    TC_ASSIGN_OR_RETURN(s.promotions, r.GetU32());
    TC_ASSIGN_OR_RETURN(s.snapshot_chunks, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.store_dead_bytes, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.store_compactions, r.GetU32());
    resp.shards.push_back(s);
  }
  return resp;
}

MetricsInfoResponse MetricsInfoResponse::FromRegistry() {
  MetricsInfoResponse resp;
  for (const metrics::MetricSample& s :
       metrics::MetricsRegistry::Instance().Collect()) {
    Entry e;
    e.kind = static_cast<uint8_t>(s.kind);
    e.name = s.name;
    e.labels = s.labels;
    e.value = s.value;
    e.count = s.hist.count;
    e.sum = s.hist.sum;
    e.max = s.hist.max;
    e.p50 = s.hist.p50;
    e.p95 = s.hist.p95;
    e.p99 = s.hist.p99;
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

Bytes MetricsInfoResponse::Encode() const {
  size_t payload_bytes = 16;
  for (const auto& e : entries) {
    payload_bytes += e.name.size() + e.labels.size() + 80;
  }
  BinaryWriter w(payload_bytes);
  w.PutVar(entries.size());
  for (const auto& e : entries) {
    w.PutU8(e.kind);
    w.PutString(e.name);
    w.PutString(e.labels);
    w.PutU64(static_cast<uint64_t>(e.value));
    w.PutVar(e.count);
    w.PutVar(e.sum);
    w.PutVar(e.max);
    w.PutVar(e.p50);
    w.PutVar(e.p95);
    w.PutVar(e.p99);
  }
  return std::move(w).Take();
}

Result<MetricsInfoResponse> MetricsInfoResponse::Decode(BytesView in) {
  BinaryReader r(in);
  MetricsInfoResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  resp.entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Entry e;
    TC_ASSIGN_OR_RETURN(e.kind, r.GetU8());
    if (e.kind > kHistogram) return InvalidArgument("unknown metric kind");
    TC_ASSIGN_OR_RETURN(e.name, r.GetString());
    TC_ASSIGN_OR_RETURN(e.labels, r.GetString());
    TC_ASSIGN_OR_RETURN(uint64_t value, r.GetU64());
    e.value = static_cast<int64_t>(value);
    TC_ASSIGN_OR_RETURN(e.count, r.GetVar());
    TC_ASSIGN_OR_RETURN(e.sum, r.GetVar());
    TC_ASSIGN_OR_RETURN(e.max, r.GetVar());
    TC_ASSIGN_OR_RETURN(e.p50, r.GetVar());
    TC_ASSIGN_OR_RETURN(e.p95, r.GetVar());
    TC_ASSIGN_OR_RETURN(e.p99, r.GetVar());
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

Bytes TraceInfoRequest::Encode() const {
  BinaryWriter w(16);
  w.PutU64(trace_id);
  w.PutU8(slow_only);
  return std::move(w).Take();
}

Result<TraceInfoRequest> TraceInfoRequest::Decode(BytesView in) {
  BinaryReader r(in);
  TraceInfoRequest req;
  TC_ASSIGN_OR_RETURN(req.trace_id, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.slow_only, r.GetU8());
  if (req.slow_only > 1) {
    return InvalidArgument("slow_only is a boolean flag");
  }
  return req;
}

TraceInfoResponse TraceInfoResponse::FromRing(const TraceInfoRequest& req) {
  TraceInfoResponse resp;
  resp.dropped = trace::Ring().dropped();
  for (const trace::SpanRecord& r : trace::Ring().Snapshot()) {
    if (req.trace_id != 0 && r.trace_id != req.trace_id) continue;
    if (req.slow_only != 0 && !r.slow) continue;
    Span s;
    s.trace_id = r.trace_id;
    s.span_id = r.span_id;
    s.parent_span_id = r.parent_span_id;
    s.op = r.op;
    s.msg_type = r.msg_type;
    s.shard = r.shard;
    s.start_us = r.start_us;
    s.duration_us = r.duration_us;
    s.slow = r.slow ? 1 : 0;
    resp.spans.push_back(std::move(s));
  }
  return resp;
}

Bytes TraceInfoResponse::Encode() const {
  size_t payload_bytes = 16;
  for (const auto& s : spans) payload_bytes += s.op.size() + 64;
  BinaryWriter w(payload_bytes);
  w.PutVar(spans.size());
  for (const auto& s : spans) {
    w.PutU64(s.trace_id);
    w.PutU64(s.span_id);
    w.PutU64(s.parent_span_id);
    w.PutString(s.op);
    w.PutU8(s.msg_type);
    w.PutU32(s.shard);
    w.PutI64(s.start_us);
    w.PutVar(s.duration_us);
    w.PutU8(s.slow);
  }
  w.PutVar(dropped);
  return std::move(w).Take();
}

Result<TraceInfoResponse> TraceInfoResponse::Decode(BytesView in) {
  BinaryReader r(in);
  TraceInfoResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  resp.spans.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Span s;
    TC_ASSIGN_OR_RETURN(s.trace_id, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.span_id, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.parent_span_id, r.GetU64());
    TC_ASSIGN_OR_RETURN(s.op, r.GetString());
    TC_ASSIGN_OR_RETURN(s.msg_type, r.GetU8());
    TC_ASSIGN_OR_RETURN(s.shard, r.GetU32());
    TC_ASSIGN_OR_RETURN(s.start_us, r.GetI64());
    TC_ASSIGN_OR_RETURN(s.duration_us, r.GetVar());
    TC_ASSIGN_OR_RETURN(s.slow, r.GetU8());
    if (s.slow > 1) return InvalidArgument("slow is a boolean flag");
    resp.spans.push_back(std::move(s));
  }
  TC_ASSIGN_OR_RETURN(resp.dropped, r.GetVar());
  return resp;
}

Bytes EventsInfoRequest::Encode() const {
  BinaryWriter w(8);
  w.PutU64(min_seq);
  return std::move(w).Take();
}

Result<EventsInfoRequest> EventsInfoRequest::Decode(BytesView in) {
  BinaryReader r(in);
  EventsInfoRequest req;
  TC_ASSIGN_OR_RETURN(req.min_seq, r.GetU64());
  return req;
}

EventsInfoResponse EventsInfoResponse::FromJournal(
    const EventsInfoRequest& req) {
  EventsInfoResponse resp;
  resp.dropped = trace::EventJournal::Instance().dropped();
  for (trace::Event& e :
       trace::EventJournal::Instance().Snapshot(req.min_seq)) {
    Event out;
    out.seq = e.seq;
    out.wall_ms = e.wall_ms;
    out.kind = std::move(e.kind);
    out.shard = e.shard;
    out.detail = std::move(e.detail);
    resp.events.push_back(std::move(out));
  }
  return resp;
}

Bytes EventsInfoResponse::Encode() const {
  size_t payload_bytes = 16;
  for (const auto& e : events) {
    payload_bytes += e.kind.size() + e.detail.size() + 40;
  }
  BinaryWriter w(payload_bytes);
  w.PutVar(events.size());
  for (const auto& e : events) {
    w.PutU64(e.seq);
    w.PutI64(e.wall_ms);
    w.PutString(e.kind);
    w.PutU32(e.shard);
    w.PutString(e.detail);
  }
  w.PutVar(dropped);
  return std::move(w).Take();
}

Result<EventsInfoResponse> EventsInfoResponse::Decode(BytesView in) {
  BinaryReader r(in);
  EventsInfoResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  resp.events.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Event e;
    TC_ASSIGN_OR_RETURN(e.seq, r.GetU64());
    TC_ASSIGN_OR_RETURN(e.wall_ms, r.GetI64());
    TC_ASSIGN_OR_RETURN(e.kind, r.GetString());
    TC_ASSIGN_OR_RETURN(e.shard, r.GetU32());
    TC_ASSIGN_OR_RETURN(e.detail, r.GetString());
    resp.events.push_back(std::move(e));
  }
  TC_ASSIGN_OR_RETURN(resp.dropped, r.GetVar());
  return resp;
}

Bytes GetRangeRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  EncodeRange(w, range);
  return std::move(w).Take();
}

Result<GetRangeRequest> GetRangeRequest::Decode(BytesView in) {
  BinaryReader r(in);
  GetRangeRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  return req;
}

Bytes GetRangeResponse::Encode() const {
  BinaryWriter w;
  w.PutVar(chunks.size());
  for (const auto& c : chunks) {
    w.PutU64(c.chunk_index);
    w.PutBytes(c.payload);
  }
  return std::move(w).Take();
}

Result<GetRangeResponse> GetRangeResponse::Decode(BytesView in) {
  BinaryReader r(in);
  GetRangeResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  resp.chunks.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ChunkData c;
    TC_ASSIGN_OR_RETURN(c.chunk_index, r.GetU64());
    TC_ASSIGN_OR_RETURN(c.payload, r.GetBytes());
    resp.chunks.push_back(std::move(c));
  }
  return resp;
}

Bytes StatRangeRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  EncodeRange(w, range);
  return std::move(w).Take();
}

Result<StatRangeRequest> StatRangeRequest::Decode(BytesView in) {
  BinaryReader r(in);
  StatRangeRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  return req;
}

Bytes StatRangeResponse::Encode() const {
  BinaryWriter w(aggregate_blob.size() + 24);
  w.PutU64(first_chunk);
  w.PutU64(last_chunk);
  w.PutBytes(aggregate_blob);
  return std::move(w).Take();
}

Result<StatRangeResponse> StatRangeResponse::Decode(BytesView in) {
  BinaryReader r(in);
  StatRangeResponse resp;
  TC_ASSIGN_OR_RETURN(resp.first_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(resp.last_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(resp.aggregate_blob, r.GetBytes());
  return resp;
}

Bytes StatSeriesRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  EncodeRange(w, range);
  w.PutU64(granularity_chunks);
  return std::move(w).Take();
}

Result<StatSeriesRequest> StatSeriesRequest::Decode(BytesView in) {
  BinaryReader r(in);
  StatSeriesRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  TC_ASSIGN_OR_RETURN(req.granularity_chunks, r.GetU64());
  return req;
}

Bytes StatSeriesResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(first_chunk);
  w.PutU64(last_chunk);
  w.PutU64(granularity_chunks);
  w.PutVar(aggregates.size());
  for (const auto& a : aggregates) w.PutBytes(a);
  return std::move(w).Take();
}

Result<StatSeriesResponse> StatSeriesResponse::Decode(BytesView in) {
  BinaryReader r(in);
  StatSeriesResponse resp;
  TC_ASSIGN_OR_RETURN(resp.first_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(resp.last_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(resp.granularity_chunks, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  resp.aggregates.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TC_ASSIGN_OR_RETURN(Bytes blob, r.GetBytes());
    resp.aggregates.push_back(std::move(blob));
  }
  return resp;
}

Bytes MultiStatRangeRequest::Encode() const {
  BinaryWriter w;
  w.PutVar(uuids.size());
  for (uint64_t id : uuids) w.PutU64(id);
  EncodeRange(w, range);
  return std::move(w).Take();
}

Result<MultiStatRangeRequest> MultiStatRangeRequest::Decode(BytesView in) {
  BinaryReader r(in);
  MultiStatRangeRequest req;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  req.uuids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TC_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
    req.uuids.push_back(id);
  }
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  return req;
}

Bytes RollupStreamRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(source_uuid);
  w.PutU64(target_uuid);
  w.PutU64(granularity_chunks);
  EncodeRange(w, range);
  return std::move(w).Take();
}

Result<RollupStreamRequest> RollupStreamRequest::Decode(BytesView in) {
  BinaryReader r(in);
  RollupStreamRequest req;
  TC_ASSIGN_OR_RETURN(req.source_uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.target_uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.granularity_chunks, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  return req;
}

Bytes DeleteRangeRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  EncodeRange(w, range);
  return std::move(w).Take();
}

Result<DeleteRangeRequest> DeleteRangeRequest::Decode(BytesView in) {
  BinaryReader r(in);
  DeleteRangeRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.range, DecodeRange(r));
  return req;
}

Bytes StreamInfoResponse::Encode() const {
  BinaryWriter w;
  config.Encode(w);
  w.PutU64(num_chunks);
  return std::move(w).Take();
}

Result<StreamInfoResponse> StreamInfoResponse::Decode(BytesView in) {
  BinaryReader r(in);
  StreamInfoResponse resp;
  TC_ASSIGN_OR_RETURN(resp.config, StreamConfig::Decode(r));
  TC_ASSIGN_OR_RETURN(resp.num_chunks, r.GetU64());
  return resp;
}

Bytes PutGrantRequest::Encode() const {
  BinaryWriter w(sealed_grant.size() + 48);
  w.PutU64(uuid);
  w.PutString(principal_id);
  w.PutU64(grant_id);
  w.PutBytes(sealed_grant);
  return std::move(w).Take();
}

Result<PutGrantRequest> PutGrantRequest::Decode(BytesView in) {
  BinaryReader r(in);
  PutGrantRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.principal_id, r.GetString());
  TC_ASSIGN_OR_RETURN(req.grant_id, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.sealed_grant, r.GetBytes());
  return req;
}

Bytes FetchGrantsRequest::Encode() const {
  BinaryWriter w;
  w.PutString(principal_id);
  return std::move(w).Take();
}

Result<FetchGrantsRequest> FetchGrantsRequest::Decode(BytesView in) {
  BinaryReader r(in);
  FetchGrantsRequest req;
  TC_ASSIGN_OR_RETURN(req.principal_id, r.GetString());
  return req;
}

Bytes FetchGrantsResponse::Encode() const {
  BinaryWriter w;
  w.PutVar(grants.size());
  for (const auto& g : grants) {
    w.PutU64(g.uuid);
    w.PutU64(g.grant_id);
    w.PutBytes(g.sealed_grant);
  }
  return std::move(w).Take();
}

Result<FetchGrantsResponse> FetchGrantsResponse::Decode(BytesView in) {
  BinaryReader r(in);
  FetchGrantsResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  resp.grants.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    TC_ASSIGN_OR_RETURN(e.uuid, r.GetU64());
    TC_ASSIGN_OR_RETURN(e.grant_id, r.GetU64());
    TC_ASSIGN_OR_RETURN(e.sealed_grant, r.GetBytes());
    resp.grants.push_back(std::move(e));
  }
  return resp;
}

Bytes RevokeGrantRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  w.PutString(principal_id);
  w.PutU64(grant_id);
  return std::move(w).Take();
}

Result<RevokeGrantRequest> RevokeGrantRequest::Decode(BytesView in) {
  BinaryReader r(in);
  RevokeGrantRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.principal_id, r.GetString());
  TC_ASSIGN_OR_RETURN(req.grant_id, r.GetU64());
  return req;
}

Bytes PutEnvelopesRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  w.PutU64(resolution_chunks);
  w.PutU64(first_index);
  w.PutVar(envelopes.size());
  for (const auto& e : envelopes) w.PutBytes(e);
  return std::move(w).Take();
}

Result<PutEnvelopesRequest> PutEnvelopesRequest::Decode(BytesView in) {
  BinaryReader r(in);
  PutEnvelopesRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.resolution_chunks, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.first_index, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  req.envelopes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TC_ASSIGN_OR_RETURN(Bytes e, r.GetBytes());
    req.envelopes.push_back(std::move(e));
  }
  return req;
}

Bytes GetEnvelopesRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  w.PutU64(resolution_chunks);
  w.PutU64(first_index);
  w.PutU64(last_index);
  return std::move(w).Take();
}

Result<GetEnvelopesRequest> GetEnvelopesRequest::Decode(BytesView in) {
  BinaryReader r(in);
  GetEnvelopesRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.resolution_chunks, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.first_index, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.last_index, r.GetU64());
  return req;
}

Bytes GetEnvelopesResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(first_index);
  w.PutVar(envelopes.size());
  for (const auto& e : envelopes) w.PutBytes(e);
  return std::move(w).Take();
}

Result<GetEnvelopesResponse> GetEnvelopesResponse::Decode(BytesView in) {
  BinaryReader r(in);
  GetEnvelopesResponse resp;
  TC_ASSIGN_OR_RETURN(resp.first_index, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  resp.envelopes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    TC_ASSIGN_OR_RETURN(Bytes e, r.GetBytes());
    resp.envelopes.push_back(std::move(e));
  }
  return resp;
}

Bytes PutAttestationRequest::Encode() const {
  BinaryWriter w(attestation.size() + 16);
  w.PutU64(uuid);
  w.PutBytes(attestation);
  return std::move(w).Take();
}

Result<PutAttestationRequest> PutAttestationRequest::Decode(BytesView in) {
  BinaryReader r(in);
  PutAttestationRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.attestation, r.GetBytes());
  return req;
}

Bytes GetAttestationRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  return std::move(w).Take();
}

Result<GetAttestationRequest> GetAttestationRequest::Decode(BytesView in) {
  BinaryReader r(in);
  GetAttestationRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  return req;
}

Bytes GetChunkWitnessedRequest::Encode() const {
  BinaryWriter w;
  w.PutU64(uuid);
  w.PutU64(first_chunk);
  w.PutU64(last_chunk);
  w.PutU64(at_size);
  return std::move(w).Take();
}

Result<GetChunkWitnessedRequest> GetChunkWitnessedRequest::Decode(
    BytesView in) {
  BinaryReader r(in);
  GetChunkWitnessedRequest req;
  TC_ASSIGN_OR_RETURN(req.uuid, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.first_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.last_chunk, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.at_size, r.GetU64());
  return req;
}

Bytes GetChunkWitnessedResponse::Encode() const {
  BinaryWriter w;
  w.PutVar(entries.size());
  for (const auto& e : entries) {
    w.PutU64(e.chunk_index);
    w.PutBytes(e.digest_blob);
    w.PutBytes(e.payload);
    w.PutBytes(e.proof);
  }
  return std::move(w).Take();
}

Result<GetChunkWitnessedResponse> GetChunkWitnessedResponse::Decode(
    BytesView in) {
  BinaryReader r(in);
  GetChunkWitnessedResponse resp;
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t n, CheckedCount(claimed, r));
  resp.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    TC_ASSIGN_OR_RETURN(e.chunk_index, r.GetU64());
    TC_ASSIGN_OR_RETURN(e.digest_blob, r.GetBytes());
    TC_ASSIGN_OR_RETURN(e.payload, r.GetBytes());
    TC_ASSIGN_OR_RETURN(e.proof, r.GetBytes());
    resp.entries.push_back(std::move(e));
  }
  return resp;
}

Bytes ReplicaOpsRequest::Encode() const {
  size_t bytes = 24;
  for (const auto& op : ops) bytes += op.key.size() + op.value.size() + 16;
  BinaryWriter w(bytes);
  w.PutU32(shard);
  w.PutU64(first_seq);
  w.PutVar(ops.size());
  for (const auto& op : ops) {
    w.PutU8(op.kind);
    w.PutString(op.key);
    w.PutBytes(op.value);
  }
  return std::move(w).Take();
}

Result<ReplicaOpsRequest> ReplicaOpsRequest::Decode(BytesView in) {
  BinaryReader r(in);
  ReplicaOpsRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.first_seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  req.ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Op op;
    TC_ASSIGN_OR_RETURN(op.kind, r.GetU8());
    if (op.kind != kReplicaOpPut && op.kind != kReplicaOpDelete) {
      return InvalidArgument("unknown replica op kind");
    }
    TC_ASSIGN_OR_RETURN(op.key, r.GetString());
    TC_ASSIGN_OR_RETURN(op.value, r.GetBytes());
    if (op.kind == kReplicaOpDelete && !op.value.empty()) {
      return InvalidArgument("replica delete carries a value");
    }
    req.ops.push_back(std::move(op));
  }
  return req;
}

Bytes ReplicaSnapshotBeginRequest::Encode() const {
  BinaryWriter w;
  w.PutU32(shard);
  w.PutU64(origin);
  w.PutU64(seq);
  return std::move(w).Take();
}

Result<ReplicaSnapshotBeginRequest> ReplicaSnapshotBeginRequest::Decode(
    BytesView in) {
  BinaryReader r(in);
  ReplicaSnapshotBeginRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.origin, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.seq, r.GetU64());
  return req;
}

Bytes ReplicaSnapshotChunkRequest::Encode() const {
  size_t bytes = 32;
  for (const auto& [key, value] : entries) {
    bytes += key.size() + value.size() + 16;
  }
  BinaryWriter w(bytes);
  w.PutU32(shard);
  w.PutU64(seq);
  w.PutU64(first_index);
  w.PutVar(entries.size());
  for (const auto& [key, value] : entries) {
    w.PutString(key);
    w.PutBytes(value);
  }
  return std::move(w).Take();
}

Result<ReplicaSnapshotChunkRequest> ReplicaSnapshotChunkRequest::Decode(
    BytesView in) {
  BinaryReader r(in);
  ReplicaSnapshotChunkRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.first_index, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  req.entries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    TC_ASSIGN_OR_RETURN(key, r.GetString());
    TC_ASSIGN_OR_RETURN(Bytes value, r.GetBytes());
    req.entries.emplace_back(std::move(key), std::move(value));
  }
  return req;
}

Bytes ReplicaSnapshotEndRequest::Encode() const {
  BinaryWriter w;
  w.PutU32(shard);
  w.PutU64(seq);
  w.PutU64(total_entries);
  return std::move(w).Take();
}

Result<ReplicaSnapshotEndRequest> ReplicaSnapshotEndRequest::Decode(
    BytesView in) {
  BinaryReader r(in);
  ReplicaSnapshotEndRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.total_entries, r.GetU64());
  return req;
}

Bytes ReplicaSnapshotAckResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(entries);
  return std::move(w).Take();
}

Result<ReplicaSnapshotAckResponse> ReplicaSnapshotAckResponse::Decode(
    BytesView in) {
  BinaryReader r(in);
  ReplicaSnapshotAckResponse resp;
  TC_ASSIGN_OR_RETURN(resp.entries, r.GetU64());
  return resp;
}

Bytes ReplicaAckResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(applied_seq);
  return std::move(w).Take();
}

Result<ReplicaAckResponse> ReplicaAckResponse::Decode(BytesView in) {
  BinaryReader r(in);
  ReplicaAckResponse resp;
  TC_ASSIGN_OR_RETURN(resp.applied_seq, r.GetU64());
  return resp;
}

Bytes ReplicaHelloRequest::Encode() const {
  BinaryWriter w;
  w.PutU32(shard);
  w.PutU32(num_shards);
  w.PutU64(applied_seq);
  w.PutU64(store_fingerprint);
  w.PutString(host);
  w.PutU32(port);
  return std::move(w).Take();
}

Result<ReplicaHelloRequest> ReplicaHelloRequest::Decode(BytesView in) {
  BinaryReader r(in);
  ReplicaHelloRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.num_shards, r.GetU32());
  if (req.num_shards == 0 || req.shard >= req.num_shards) {
    return InvalidArgument("replica hello shard id outside its shard count");
  }
  TC_ASSIGN_OR_RETURN(req.applied_seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.store_fingerprint, r.GetU64());
  TC_ASSIGN_OR_RETURN(req.host, r.GetString());
  TC_ASSIGN_OR_RETURN(req.port, r.GetU32());
  if (req.port == 0 || req.port > 65535) {
    return InvalidArgument("replica hello carries an invalid port");
  }
  return req;
}

Bytes ReplicaHelloResponse::Encode() const {
  BinaryWriter w;
  w.PutU64(head_seq);
  w.PutU32(heartbeat_ms);
  return std::move(w).Take();
}

Result<ReplicaHelloResponse> ReplicaHelloResponse::Decode(BytesView in) {
  BinaryReader r(in);
  ReplicaHelloResponse resp;
  TC_ASSIGN_OR_RETURN(resp.head_seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(resp.heartbeat_ms, r.GetU32());
  return resp;
}

Bytes ReplicaHeartbeatRequest::Encode() const {
  BinaryWriter w;
  w.PutU32(shard);
  w.PutU64(head_seq);
  w.PutVar(peers.size());
  for (const auto& peer : peers) {
    w.PutString(peer.host);
    w.PutU32(peer.port);
    w.PutU64(peer.applied_seq);
  }
  return std::move(w).Take();
}

Result<ReplicaHeartbeatRequest> ReplicaHeartbeatRequest::Decode(BytesView in) {
  BinaryReader r(in);
  ReplicaHeartbeatRequest req;
  TC_ASSIGN_OR_RETURN(req.shard, r.GetU32());
  TC_ASSIGN_OR_RETURN(req.head_seq, r.GetU64());
  TC_ASSIGN_OR_RETURN(uint64_t claimed, r.GetVar());
  TC_ASSIGN_OR_RETURN(size_t count, CheckedCount(claimed, r));
  req.peers.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Peer peer;
    TC_ASSIGN_OR_RETURN(peer.host, r.GetString());
    TC_ASSIGN_OR_RETURN(peer.port, r.GetU32());
    TC_ASSIGN_OR_RETURN(peer.applied_seq, r.GetU64());
    req.peers.push_back(std::move(peer));
  }
  return req;
}

}  // namespace tc::net
