#include "net/metrics_http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace tc::net {

MetricsHttpServer::MetricsHttpServer(uint16_t port,
                                     std::function<void()> pre_collect)
    : port_(port), pre_collect_(std::move(pre_collect)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Unavailable("metrics: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("metrics: bind failed: ") +
                       std::strerror(errno));
  }
  if (port_ == 0) {
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable("metrics: listen failed");
  }
  running_ = true;
  server_ = std::thread([this] { ServeLoop(); });
  return Status::Ok();
}

void MetricsHttpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (server_.joinable()) server_.join();
  listen_fd_ = -1;
}

void MetricsHttpServer::ServeLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;
    }
    // One request per connection, served inline on the accept thread: a
    // scrape is cheap and rare, and serializing them keeps the listener a
    // single thread with no shared state.
    ServeOne(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::ServeOne(int fd) {
  // Bound the read so a stalled scraper cannot wedge the accept thread.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the header terminator (or the 4 KiB cap — request bodies
  // are not a thing on a scrape endpoint).
  std::string request;
  char buf[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return;
    request.append(buf, static_cast<size_t>(n));
  }

  std::string body;
  std::string status_line;
  if (request.starts_with("GET /metrics ") ||
      request.starts_with("GET /metrics\r")) {
    if (pre_collect_) pre_collect_();
    body = metrics::MetricsRegistry::Instance().RenderPrometheus();
    status_line = "HTTP/1.0 200 OK\r\n";
  } else {
    body = "not found\n";
    status_line = "HTTP/1.0 404 Not Found\r\n";
  }

  std::string response = status_line +
                         "Content-Type: text/plain; version=0.0.4\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\n"
                         "Connection: close\r\n\r\n" +
                         body;
  size_t sent = 0;
  while (sent < response.size()) {
    ssize_t n = ::write(fd, response.data() + sent, response.size() - sent);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace tc::net
