#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/io.hpp"
#include "common/logging.hpp"

namespace tc::net {

namespace {
constexpr size_t kMaxFrameBody = 512u << 20;  // sanity bound

struct FrameHeader {
  uint32_t body_len;
  MessageType type;
  uint64_t request_id;
};

Result<FrameHeader> ReadFrameHeader(int fd) {
  Bytes header(13);
  TC_RETURN_IF_ERROR(ReadExact(fd, header));
  BinaryReader r(header);
  FrameHeader h{};
  TC_ASSIGN_OR_RETURN(h.body_len, r.GetU32());
  TC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  TC_ASSIGN_OR_RETURN(h.request_id, r.GetU64());
  h.type = static_cast<MessageType>(type);
  if (h.body_len > kMaxFrameBody) return DataLoss("oversized frame");
  return h;
}
}  // namespace

Status ReadExact(int fd, MutableBytesView out) {
  size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n == 0) return Unavailable("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("read failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAll(int fd, BytesView data) {
  size_t done = 0;
  while (done < data.size()) {
    // MSG_NOSIGNAL: writing into a peer-closed socket must surface as EPIPE,
    // not kill the process with SIGPIPE — replication shippers write to
    // follower daemons that can die at any moment.
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

TcpServer::TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
                     bool bind_any)
    : handler_(std::move(handler)), port_(port), bind_any_(bind_any) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_any_ ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Unavailable(std::string("bind failed: ") + std::strerror(errno));
  }
  if (port_ == 0) {
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Unavailable("listen failed");
  }
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();

  // Connection threads block in read(); shut their sockets down so the
  // blocked reads return before we join. Each thread closes and deregisters
  // its own fd on exit, so joining must happen outside the lock.
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(threads_mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(connection_threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(threads_mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  while (running_) {
    auto header = ReadFrameHeader(fd);
    if (!header.ok()) break;  // peer closed or corrupt stream
    Bytes body(header->body_len);
    if (!ReadExact(fd, body).ok()) break;

    Bytes payload;
    Status status;
    auto result = handler_->Handle(header->type, body);
    if (result.ok()) {
      payload = std::move(*result);
    } else {
      status = result.status();
    }
    Bytes response = EncodeFrame(MessageType::kResponse, header->request_id,
                                 EncodeResponseBody(status, payload));
    if (!WriteAll(fd, response).ok()) break;
  }
  // Deregister before closing so Stop() never shutdown()s a reused fd.
  {
    std::lock_guard lock(threads_mu_);
    std::erase(connection_fds_, fd);
  }
  ::close(fd);
}

Result<std::unique_ptr<TcpClient>> TcpClient::Connect(
    const std::string& host, uint16_t port, int64_t connect_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host address: " + host);
  }
  if (connect_timeout_ms > 0) {
    // Bounded dial: a blackholed peer must fail the Connect, not park the
    // caller in the kernel's minutes-long SYN retry schedule.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pending{fd, POLLOUT, 0};
      rc = ::poll(&pending, 1, static_cast<int>(connect_timeout_ms));
      if (rc <= 0) {
        ::close(fd);
        return Unavailable(rc == 0 ? "connect timed out"
                                   : std::string("connect poll failed: ") +
                                         std::strerror(errno));
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        return Unavailable(std::string("connect failed: ") +
                           std::strerror(err));
      }
    } else if (rc != 0) {
      ::close(fd);
      return Unavailable(std::string("connect failed: ") +
                         std::strerror(errno));
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    ::close(fd);
    return Unavailable(std::string("connect failed: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpClient>(new TcpClient(fd));
}

Status TcpClient::SetOpTimeout(int64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Unavailable("setting socket timeouts failed");
  }
  return Status::Ok();
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Bytes> TcpClient::Call(MessageType type, BytesView body) {
  std::lock_guard lock(mu_);
  uint64_t id = next_request_id_++;
  TC_RETURN_IF_ERROR(WriteAll(fd_, EncodeFrame(type, id, body)));

  auto header = ReadFrameHeader(fd_);
  TC_RETURN_IF_ERROR(header.status());
  if (header->type != MessageType::kResponse || header->request_id != id) {
    return DataLoss("protocol violation: unexpected frame");
  }
  Bytes response_body(header->body_len);
  TC_RETURN_IF_ERROR(ReadExact(fd_, response_body));
  return DecodeResponseBody(response_body);
}

}  // namespace tc::net
