#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/io.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace tc::net {

namespace {

// Transport metrics, one family per direction with a side label. Function-
// local statics: registered on first use, then lock-free to record.
struct WireVolume {
  metrics::Counter& rx_bytes;
  metrics::Counter& rx_frames;
  metrics::Counter& tx_bytes;
  metrics::Counter& tx_frames;
};

WireVolume& ServerVolume() {
  static WireVolume v{
      metrics::GetCounter("tc_net_rx_bytes_total", "side=\"server\""),
      metrics::GetCounter("tc_net_rx_frames_total", "side=\"server\""),
      metrics::GetCounter("tc_net_tx_bytes_total", "side=\"server\""),
      metrics::GetCounter("tc_net_tx_frames_total", "side=\"server\"")};
  return v;
}

WireVolume& ClientVolume() {
  static WireVolume v{
      metrics::GetCounter("tc_net_rx_bytes_total", "side=\"client\""),
      metrics::GetCounter("tc_net_rx_frames_total", "side=\"client\""),
      metrics::GetCounter("tc_net_tx_bytes_total", "side=\"client\""),
      metrics::GetCounter("tc_net_tx_frames_total", "side=\"client\"")};
  return v;
}

metrics::Gauge& ServerConnsGauge() {
  static metrics::Gauge& g = metrics::GetGauge("tc_net_server_conns");
  return g;
}

metrics::Gauge& ServerInflightGauge() {
  static metrics::Gauge& g = metrics::GetGauge("tc_net_server_inflight");
  return g;
}

/// Demux depth: calls registered with the client reader, awaiting responses.
metrics::Gauge& ClientPendingGauge() {
  static metrics::Gauge& g = metrics::GetGauge("tc_net_client_pending");
  return g;
}

metrics::Counter& ClientOpTimeouts() {
  static metrics::Counter& c =
      metrics::GetCounter("tc_net_client_op_timeouts_total");
  return c;
}

/// Connection serials seed the per-request trace ids (serial << 32 |
/// request_id) so ids from different connections never collide.
uint64_t NextConnSerial() {
  static std::atomic<uint64_t> serial{0};
  return serial.fetch_add(1, std::memory_order_relaxed) + 1;
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Read + decode one frame header. `max_body` bounds the claimed body size;
/// pass UINT32_MAX to defer the bound to the caller (the server does, so it
/// can answer the offending request id with a clean status).
Result<FrameHeader> ReadFrameHeader(int fd, size_t max_body) {
  Bytes header(kFrameHeaderBytes);
  TC_RETURN_IF_ERROR(ReadExact(fd, header));
  return DecodeFrameHeader(header, max_body);
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Status ReadExact(int fd, MutableBytesView out) {
  size_t done = 0;
  while (done < out.size()) {
    ssize_t n = ::read(fd, out.data() + done, out.size() - done);
    if (n == 0) return Unavailable("connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("read failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status WriteAll(int fd, BytesView data) {
  size_t done = 0;
  while (done < data.size()) {
    // MSG_NOSIGNAL: writing into a peer-closed socket must surface as EPIPE,
    // not kill the process with SIGPIPE — replication shippers write to
    // follower daemons that can die at any moment.
    ssize_t n = ::send(fd, data.data() + done, data.size() - done,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Unavailable(std::string("write failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------- server

struct TcpServer::Conn {
  explicit Conn(int fd_in) : fd(fd_in), serial(NextConnSerial()) {}
  ~Conn() { ::close(fd); }

  const int fd;
  const uint64_t serial;  // trace-id seed for requests on this connection
  std::atomic<bool> alive{true};

  // Serializes response frames: concurrent handlers interleave whole
  // frames, never bytes (the per-connection "write queue" at frame
  // granularity).
  Mutex write_mu;

  // Mutation FIFO: same-connection mutations run one at a time, in arrival
  // order, on a single chained dispatch task.
  Mutex q_mu;
  std::deque<std::pair<FrameHeader, Bytes>> mutations GUARDED_BY(q_mu);
  bool mutation_task_running GUARDED_BY(q_mu) = false;

  // Requests queued or executing for this connection; the reader blocks at
  // the cap so a fast pipeliner cannot queue unbounded work.
  Mutex inflight_mu;
  CondVar inflight_cv;
  size_t inflight GUARDED_BY(inflight_mu) = 0;

  void WriteResponse(uint64_t request_id, const Result<Bytes>& result) {
    Bytes body = result.ok() ? EncodeResponseBody(Status::Ok(), *result)
                             : EncodeResponseBody(result.status(), {});
    Bytes frame = EncodeFrame(MessageType::kResponse, request_id, body);
    if constexpr (metrics::kEnabled) {
      ServerVolume().tx_frames.Inc();
      ServerVolume().tx_bytes.Inc(frame.size());
    }
    MutexLock lock(write_mu);
    // tc_analyze:allow(blocking-under-lock,blocking-in-executor) write_mu exists to serialize whole frames onto the socket — the write IS its critical section — and dispatch-pool handlers are the intended writers until the epoll rewrite (ROADMAP, gated on green B2)
    if (!WriteAll(fd, frame).ok()) {
      // Peer is gone or wedged shut: stop the reader too.
      alive = false;
      ::shutdown(fd, SHUT_RDWR);
    }
  }
};

TcpServer::TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
                     TcpServerOptions options)
    : handler_(std::move(handler)), port_(port), options_(options) {}

TcpServer::TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
                     bool bind_any)
    : TcpServer(std::move(handler), port,
                TcpServerOptions{.bind_any = bind_any}) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Unavailable("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(options_.bind_any ? INADDR_ANY
                                                 : INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    // Close before returning: Stop() never runs for a server that failed
    // to start, so a leaked listener would outlive every retry.
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable(std::string("bind failed: ") + std::strerror(errno));
  }
  if (port_ == 0) {
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Unavailable("listen failed");
  }
  size_t threads = options_.dispatch_threads;
  if (threads == 0) {
    threads = std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  dispatch_ = std::make_unique<Executor>(threads, "dispatch");
  running_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();

  // Connection readers block in read() or on the inflight cap; shut their
  // sockets down and wake the cap waiters so the blocked readers return
  // before we join. Each reader deregisters its connection on exit, so
  // joining must happen outside the lock.
  std::vector<std::shared_ptr<Conn>> conns;
  std::vector<std::thread> to_join;
  {
    MutexLock lock(threads_mu_);
    conns = connections_;
    to_join.swap(connection_threads_);
  }
  for (auto& conn : conns) {
    conn->alive = false;
    ::shutdown(conn->fd, SHUT_RDWR);
    conn->inflight_cv.NotifyAll();
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
  // Drain in-flight dispatch tasks; their Conn references drop as they
  // finish, closing the fds.
  dispatch_.reset();
  MutexLock lock(threads_mu_);
  connections_.clear();
}

void TcpServer::AcceptLoop() {
  while (running_) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) break;
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd);
    ServerConnsGauge().Inc();
    MutexLock lock(threads_mu_);
    connections_.push_back(conn);
    connection_threads_.emplace_back(
        [this, conn = std::move(conn)] { ServeConnection(conn); });
  }
}

void TcpServer::FinishRequest(const std::shared_ptr<Conn>& conn) {
  ServerInflightGauge().Dec();
  MutexLock lock(conn->inflight_mu);
  --conn->inflight;
  conn->inflight_cv.NotifyAll();
}

void TcpServer::HandleRequest(const std::shared_ptr<Conn>& conn,
                              const FrameHeader& header, const Bytes& body) {
  // Stamp the trace context on the dispatching thread: adopt the wire's
  // trace id when the caller sent one (a routed/shipped hop inside a larger
  // request), else derive the origin id (connection serial | request id).
  // TraceSpans opened inside the handler inherit it and parent under the
  // caller's span.
  if constexpr (metrics::kEnabled) {
    uint64_t trace_id =
        header.trace_id != 0
            ? header.trace_id
            : (conn->serial << 32) | (header.request_id & 0xffffffff);
    metrics::SetCurrentTraceContext({trace_id, header.parent_span_id});
  }
  conn->WriteResponse(header.request_id,
                      handler_->Handle(header.type, body));
  if constexpr (metrics::kEnabled) metrics::SetCurrentTraceContext({});
}

void TcpServer::DrainMutations(const std::shared_ptr<Conn>& conn) {
  // One drain task exists per connection at a time, so mutations apply in
  // exactly the order the client sent them even though they share the
  // dispatch executor with everything else.
  for (;;) {
    FrameHeader header;
    Bytes body;
    {
      MutexLock lock(conn->q_mu);
      if (conn->mutations.empty()) {
        conn->mutation_task_running = false;
        return;
      }
      header = conn->mutations.front().first;
      body = std::move(conn->mutations.front().second);
      conn->mutations.pop_front();
    }
    HandleRequest(conn, header, body);
    FinishRequest(conn);
  }
}

void TcpServer::ServeConnection(std::shared_ptr<Conn> conn) {
  while (running_ && conn->alive) {
    // Bound enforcement is split so the offending request id is known: an
    // oversized claim gets a clean error response (no allocation), then the
    // connection drops — framing past an unread body cannot be trusted.
    auto header = ReadFrameHeader(conn->fd, UINT32_MAX);
    if (!header.ok()) break;  // peer closed or corrupt stream
    if (header->body_len > options_.max_frame_body) {
      conn->WriteResponse(
          header->request_id,
          InvalidArgument("frame body of " + std::to_string(header->body_len) +
                          " bytes exceeds this server's max of " +
                          std::to_string(options_.max_frame_body)));
      break;
    }
    Bytes body(header->body_len);
    if (!ReadExact(conn->fd, body).ok()) break;
    if constexpr (metrics::kEnabled) {
      ServerVolume().rx_frames.Inc();
      // tc_analyze:allow(bounded-decode) byte accounting, not header parsing
      ServerVolume().rx_bytes.Inc(kFrameHeaderBytes + body.size());
    }

    {
      MutexLock lock(conn->inflight_mu);
      while (conn->inflight >= options_.max_inflight_per_conn && running_ &&
             conn->alive) {
        conn->inflight_cv.Wait(conn->inflight_mu);
      }
      if (!running_ || !conn->alive) break;
      ++conn->inflight;
    }
    ServerInflightGauge().Inc();

    if (IsMutation(header->type)) {
      bool submit = false;
      {
        MutexLock lock(conn->q_mu);
        conn->mutations.emplace_back(*header, std::move(body));
        if (!conn->mutation_task_running) {
          conn->mutation_task_running = true;
          submit = true;
        }
      }
      if (submit) {
        dispatch_->Submit([this, conn] { DrainMutations(conn); });
      }
    } else {
      dispatch_->Submit([this, conn, header = *header,
                         body = std::move(body)] {
        HandleRequest(conn, header, body);
        FinishRequest(conn);
      });
    }
  }
  // Stop reading; in-flight dispatch tasks may still write responses. The
  // fd closes when the last Conn reference (a task or this reader) drops —
  // never while a handler could write to a reused descriptor.
  ::shutdown(conn->fd, SHUT_RD);
  ServerConnsGauge().Dec();
  MutexLock lock(threads_mu_);
  std::erase(connections_, conn);
}

// ---------------------------------------------------------------- client

Result<std::unique_ptr<TcpClient>> TcpClient::Connect(
    const std::string& host, uint16_t port, int64_t connect_timeout_ms,
    size_t max_frame_body) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Unavailable("socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad host address: " + host);
  }
  if (connect_timeout_ms > 0) {
    // Bounded dial: a blackholed peer must fail the Connect, not park the
    // caller in the kernel's minutes-long SYN retry schedule.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pending{fd, POLLOUT, 0};
      rc = ::poll(&pending, 1, static_cast<int>(connect_timeout_ms));
      if (rc <= 0) {
        ::close(fd);
        return Unavailable(rc == 0 ? "connect timed out"
                                   : std::string("connect poll failed: ") +
                                         std::strerror(errno));
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        return Unavailable(std::string("connect failed: ") +
                           std::strerror(err));
      }
    } else if (rc != 0) {
      ::close(fd);
      return Unavailable(std::string("connect failed: ") +
                         std::strerror(errno));
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    ::close(fd);
    return Unavailable(std::string("connect failed: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<TcpClient>(new TcpClient(fd, max_frame_body));
}

TcpClient::TcpClient(int fd, size_t max_frame_body)
    : max_frame_body_(max_frame_body), fd_(fd) {
  // Self-pipe: AsyncCall nudges the reader out of an open-ended poll when
  // the pending set (and thus the next deadline) changes. On the unlikely
  // pipe() failure the client still works; op-timeout wakeups just lean on
  // the poll granularity below.
  if (::pipe(wake_fds_) == 0) {
    SetNonBlocking(wake_fds_[0]);
    SetNonBlocking(wake_fds_[1]);
  } else {
    wake_fds_[0] = wake_fds_[1] = -1;
  }
  reader_ = std::thread([this] { ReaderLoop(); });
}

TcpClient::~TcpClient() {
  FailConnection(Unavailable("client connection destroyed"));
  if (reader_.joinable()) reader_.join();
  ::close(fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

Status TcpClient::SetOpTimeout(int64_t timeout_ms) {
  // Send side: a wedged peer must fail a write, not park it forever. The
  // receive side is enforced by the reader's poll deadline over the oldest
  // pending call; SO_RCVTIMEO additionally backstops a peer that stalls
  // mid-frame (poll cannot fire while the reader is inside ReadExact).
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Unavailable("setting socket timeouts failed");
  }
  op_timeout_ms_.store(timeout_ms);
  {
    // "Bound every in-flight call" includes calls issued before this was
    // configured: restart their clocks from now.
    MutexLock lock(mu_);
    int64_t deadline = timeout_ms > 0 ? SteadyNowMs() + timeout_ms : 0;
    for (auto& [id, p] : pending_) p.deadline_ms = deadline;
  }
  WakeReader();
  return Status::Ok();
}

void TcpClient::WakeReader() {
  if (wake_fds_[1] < 0) return;
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void TcpClient::FailConnection(const Status& status) {
  std::vector<CallCompleter> victims;
  Status final_status;
  {
    MutexLock lock(mu_);
    if (!closed_) {
      closed_ = true;
      conn_status_ = status.ok() ? Unavailable("connection closed") : status;
    }
    final_status = conn_status_;
    victims.reserve(pending_.size());
    for (auto& [id, p] : pending_) victims.push_back(p.completer);
    pending_.clear();
  }
  if (!victims.empty()) {
    ClientPendingGauge().Dec(static_cast<int64_t>(victims.size()));
  }
  ::shutdown(fd_, SHUT_RDWR);
  WakeReader();
  // Error fan-out: every call still in flight fails with the connection's
  // terminal status. Completed outside the lock — callbacks may Wait().
  for (auto& v : victims) v.Complete(final_status);
}

PendingCall TcpClient::AsyncCall(MessageType type, BytesView body,
                                 CallCallback on_done) {
  CallCompleter completer(std::move(on_done));
  PendingCall handle = completer.pending();

  uint64_t id = 0;
  Status closed_status;
  {
    MutexLock lock(mu_);
    if (closed_) {
      closed_status = conn_status_;
    } else {
      id = next_request_id_++;
      int64_t t = op_timeout_ms_.load();
      pending_.emplace(id,
                       Pending{completer, t > 0 ? SteadyNowMs() + t : 0});
    }
  }
  if (id == 0) {
    // Dead connection: fail fast, outside the lock (callbacks may Wait()).
    completer.Complete(std::move(closed_status));
    return handle;
  }
  ClientPendingGauge().Inc();

  // Register-then-send: the reader may legally see the response before this
  // thread regains the CPU. Nudge the reader so its poll deadline covers
  // the new call.
  WakeReader();
  // Stamp the caller's live trace context on the frame so the server's
  // spans land in the same trace, under the span issuing this call.
  metrics::TraceContext ctx;
  if constexpr (metrics::kEnabled) ctx = metrics::OutgoingTraceContext();
  Bytes frame = EncodeFrame(type, id, body, ctx.trace_id,
                            ctx.parent_span_id);
  if constexpr (metrics::kEnabled) {
    ClientVolume().tx_frames.Inc();
    ClientVolume().tx_bytes.Inc(frame.size());
  }
  Status write_status;
  {
    MutexLock lock(write_mu_);
    // tc_analyze:allow(blocking-under-lock) write_mu_ exists to serialize request frames onto the socket — the write IS its critical section; mu_ (the bookkeeping lock) is never held here
    write_status = WriteAll(fd_, frame);
  }
  if (!write_status.ok()) {
    // A mid-frame write failure poisons the stream for every later frame;
    // fail the connection (this call is still pending, so it fans out too).
    FailConnection(write_status);
  }
  return handle;
}

void TcpClient::ReaderLoop() {
  for (;;) {
    // Expiry is checked here, at the top of EVERY iteration — not only
    // when poll times out — so a stuck request still fails on schedule
    // while other responses keep the socket readable. (A peer trickling
    // one frame forever is backstopped by SO_RCVTIMEO inside ReadExact.)
    int timeout = -1;
    bool expired = false;
    {
      MutexLock lock(mu_);
      if (closed_) return;
      int64_t t = op_timeout_ms_.load();
      if (t > 0 && !pending_.empty()) {
        int64_t min_deadline = INT64_MAX;
        for (const auto& [id, p] : pending_) {
          if (p.deadline_ms > 0) {
            min_deadline = std::min(min_deadline, p.deadline_ms);
          }
        }
        if (min_deadline != INT64_MAX) {
          int64_t remaining = min_deadline - SteadyNowMs();
          if (remaining <= 0) {
            expired = true;
          } else {
            timeout = static_cast<int>(
                std::clamp<int64_t>(remaining, 1, 3'600'000));
          }
        }
      }
    }
    if (expired) {
      ClientOpTimeouts().Inc();
      size_t stranded = 0;
      {
        MutexLock lock(mu_);
        stranded = pending_.size();
      }
      // One expiry strands every pending call on this connection (the
      // stream cannot be resynced) — journal the storm size, not just the
      // first victim.
      trace::RecordEvent("client_op_timeout", trace::kNoShard,
                         "pending=" + std::to_string(stranded) +
                             " timeout_ms=" +
                             std::to_string(op_timeout_ms_.load()));
      FailConnection(Unavailable("request timed out after " +
                                 std::to_string(op_timeout_ms_.load()) +
                                 " ms"));
      return;
    }

    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    nfds_t nfds = wake_fds_[0] >= 0 ? 2 : 1;
    int rc = ::poll(fds, nfds, timeout);
    if (rc < 0) {
      if (errno == EINTR) continue;
      FailConnection(
          Unavailable(std::string("poll failed: ") + std::strerror(errno)));
      return;
    }
    if (rc == 0) continue;  // re-enter the deadline pass above
    if (nfds == 2 && (fds[1].revents & POLLIN)) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR))) continue;

    auto header = ReadFrameHeader(fd_, max_frame_body_);
    if (!header.ok()) {
      FailConnection(header.status());
      return;
    }
    if (header->type != MessageType::kResponse) {
      FailConnection(
          DataLoss("protocol violation: non-response frame from server"));
      return;
    }
    Bytes body(header->body_len);
    if (Status st = ReadExact(fd_, body); !st.ok()) {
      FailConnection(st);
      return;
    }
    if constexpr (metrics::kEnabled) {
      ClientVolume().rx_frames.Inc();
      // tc_analyze:allow(bounded-decode) byte accounting, not header parsing
      ClientVolume().rx_bytes.Inc(kFrameHeaderBytes + body.size());
    }

    std::optional<CallCompleter> completer;
    {
      MutexLock lock(mu_);
      auto it = pending_.find(header->request_id);
      if (it != pending_.end()) {
        completer = std::move(it->second.completer);
        pending_.erase(it);
      }
    }
    if (completer) ClientPendingGauge().Dec();
    if (!completer) {
      // A response for an id we never sent (or already answered): the
      // demux invariant is broken, so no later match can be trusted.
      FailConnection(DataLoss(
          "protocol violation: response for unknown request id " +
          std::to_string(header->request_id)));
      return;
    }
    completer->Complete(DecodeResponseBody(body));
  }
}

}  // namespace tc::net
