#include "net/wire.hpp"

#include "common/io.hpp"
#include "common/thread_annotations.hpp"

namespace tc::net {

bool IsMutation(MessageType type) {
  // Exhaustive by construction: every enumerator appears exactly once, no
  // default. Adding a MessageType without classifying it here is a compile
  // warning (-Wswitch) and a tc_lint failure — an unclassified frame would
  // silently pick an ordering discipline.
  switch (type) {
    case MessageType::kResponse:
    case MessageType::kGetRange:
    case MessageType::kGetStatRange:
    case MessageType::kGetStatSeries:
    case MessageType::kGetStreamInfo:
    case MessageType::kFetchGrants:
    case MessageType::kGetEnvelopes:
    case MessageType::kMultiStatRange:
    case MessageType::kPing:
    case MessageType::kGetAttestation:
    case MessageType::kGetChunkWitnessed:
    case MessageType::kClusterInfo:
    case MessageType::kMetricsInfo:
    case MessageType::kTraceInfo:
    case MessageType::kEventsInfo:
      return false;
    // Ingest, grants, rollups, deletes, attestations, and replica shipments
    // mutate server state — same-connection arrival order is preserved.
    case MessageType::kCreateStream:
    case MessageType::kDeleteStream:
    case MessageType::kInsertChunk:
    case MessageType::kRollupStream:
    case MessageType::kDeleteRange:
    case MessageType::kPutGrant:
    case MessageType::kRevokeGrant:
    case MessageType::kPutEnvelopes:
    case MessageType::kPutAttestation:
    case MessageType::kInsertChunkBatch:
    case MessageType::kReplicaHello:
    case MessageType::kReplicaSnapshotBegin:
    case MessageType::kReplicaSnapshotChunk:
    case MessageType::kReplicaSnapshotEnd:
    case MessageType::kReplicaHeartbeat:
    case MessageType::kReplicaOps:
      return true;
  }
  // A raw wire byte outside the enum (hostile or future peer) is
  // conservatively a mutation: serialized, never interleaved.
  return true;
}

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kResponse: return "response";
    case MessageType::kCreateStream: return "create_stream";
    case MessageType::kDeleteStream: return "delete_stream";
    case MessageType::kInsertChunk: return "insert_chunk";
    case MessageType::kGetRange: return "get_range";
    case MessageType::kGetStatRange: return "get_stat_range";
    case MessageType::kGetStatSeries: return "get_stat_series";
    case MessageType::kRollupStream: return "rollup_stream";
    case MessageType::kDeleteRange: return "delete_range";
    case MessageType::kGetStreamInfo: return "get_stream_info";
    case MessageType::kPutGrant: return "put_grant";
    case MessageType::kFetchGrants: return "fetch_grants";
    case MessageType::kRevokeGrant: return "revoke_grant";
    case MessageType::kPutEnvelopes: return "put_envelopes";
    case MessageType::kGetEnvelopes: return "get_envelopes";
    case MessageType::kMultiStatRange: return "multi_stat_range";
    case MessageType::kPing: return "ping";
    case MessageType::kPutAttestation: return "put_attestation";
    case MessageType::kGetAttestation: return "get_attestation";
    case MessageType::kGetChunkWitnessed: return "get_chunk_witnessed";
    case MessageType::kInsertChunkBatch: return "insert_chunk_batch";
    case MessageType::kClusterInfo: return "cluster_info";
    case MessageType::kReplicaHello: return "replica_hello";
    case MessageType::kReplicaSnapshotBegin: return "replica_snapshot_begin";
    case MessageType::kReplicaSnapshotChunk: return "replica_snapshot_chunk";
    case MessageType::kReplicaSnapshotEnd: return "replica_snapshot_end";
    case MessageType::kReplicaHeartbeat: return "replica_heartbeat";
    case MessageType::kReplicaOps: return "replica_ops";
    case MessageType::kMetricsInfo: return "metrics_info";
    case MessageType::kTraceInfo: return "trace_info";
    case MessageType::kEventsInfo: return "events_info";
  }
  return "unknown";
}

namespace detail {
struct CallState {
  Mutex mu;
  CondVar cv;
  bool done GUARDED_BY(mu) = false;
  Result<Bytes> result GUARDED_BY(mu){Bytes{}};
  CallCallback callback GUARDED_BY(mu);
};
}  // namespace detail

Result<Bytes> PendingCall::Wait() const {
  if (!state_) return Internal("waiting on an empty PendingCall");
  MutexLock lock(state_->mu);
  while (!state_->done) state_->cv.Wait(state_->mu);
  return state_->result;
}

std::optional<Result<Bytes>> PendingCall::TryGet() const {
  if (!state_) return Result<Bytes>(Internal("empty PendingCall"));
  MutexLock lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->result;
}

bool PendingCall::done() const {
  if (!state_) return false;
  MutexLock lock(state_->mu);
  return state_->done;
}

CallCompleter::CallCompleter(CallCallback callback)
    : state_(std::make_shared<detail::CallState>()) {
  MutexLock lock(state_->mu);
  state_->callback = std::move(callback);
}

void CallCompleter::Complete(Result<Bytes> result) const {
  CallCallback callback;
  // Publication pointer taken under the lock; `result` is written exactly
  // once (first completion wins) and immutable after `done`, so the
  // post-unlock read through the pointer needs no further synchronization —
  // and no analysis escape.
  const Result<Bytes>* published = nullptr;
  {
    MutexLock lock(state_->mu);
    if (state_->done) return;  // first completion wins
    state_->result = std::move(result);
    state_->done = true;
    callback = std::move(state_->callback);
    published = &state_->result;
  }
  state_->cv.NotifyAll();
  // Outside the lock: the callback may Wait()/TryGet() the handle.
  if (callback) callback(*published);
}

Result<FrameHeader> DecodeFrameHeader(BytesView header, size_t max_body) {
  BinaryReader r(header);
  FrameHeader h{};
  TC_ASSIGN_OR_RETURN(h.body_len, r.GetU32());
  TC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  TC_ASSIGN_OR_RETURN(h.request_id, r.GetU64());
  TC_ASSIGN_OR_RETURN(h.trace_id, r.GetU64());
  TC_ASSIGN_OR_RETURN(h.parent_span_id, r.GetU64());
  h.type = static_cast<MessageType>(type);
  if (h.body_len > max_body) {
    return InvalidArgument(
        "frame body of " + std::to_string(h.body_len) +
        " bytes exceeds the transport's max of " + std::to_string(max_body));
  }
  return h;
}

Bytes EncodeFrame(MessageType type, uint64_t request_id, BytesView body,
                  uint64_t trace_id, uint64_t parent_span_id) {
  BinaryWriter w(body.size() + kFrameHeaderBytes);
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(request_id);
  w.PutU64(trace_id);
  w.PutU64(parent_span_id);
  w.PutRaw(body);
  return std::move(w).Take();
}

Bytes EncodeResponseBody(const Status& status, BytesView payload) {
  BinaryWriter w(payload.size() + 32);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  w.PutRaw(payload);
  return std::move(w).Take();
}

Result<Bytes> DecodeResponseBody(BytesView body) {
  BinaryReader r(body);
  TC_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  TC_ASSIGN_OR_RETURN(std::string msg, r.GetString());
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  TC_ASSIGN_OR_RETURN(BytesView payload, r.GetRaw(r.remaining()));
  return Bytes(payload.begin(), payload.end());
}

}  // namespace tc::net
