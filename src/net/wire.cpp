#include "net/wire.hpp"

#include <condition_variable>
#include <mutex>

#include "common/io.hpp"

namespace tc::net {

bool IsMutation(MessageType type) {
  switch (type) {
    case MessageType::kResponse:
    case MessageType::kGetRange:
    case MessageType::kGetStatRange:
    case MessageType::kGetStatSeries:
    case MessageType::kGetStreamInfo:
    case MessageType::kFetchGrants:
    case MessageType::kGetEnvelopes:
    case MessageType::kMultiStatRange:
    case MessageType::kPing:
    case MessageType::kGetAttestation:
    case MessageType::kGetChunkWitnessed:
    case MessageType::kClusterInfo:
      return false;
    // Everything else mutates (ingest, grants, rollups, deletes, replica
    // shipments) or is unknown — serialize it.
    default:
      return true;
  }
}

namespace detail {
struct CallState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<Bytes> result{Bytes{}};
  CallCallback callback;
};
}  // namespace detail

Result<Bytes> PendingCall::Wait() const {
  if (!state_) return Internal("waiting on an empty PendingCall");
  std::unique_lock lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  return state_->result;
}

std::optional<Result<Bytes>> PendingCall::TryGet() const {
  if (!state_) return Result<Bytes>(Internal("empty PendingCall"));
  std::lock_guard lock(state_->mu);
  if (!state_->done) return std::nullopt;
  return state_->result;
}

bool PendingCall::done() const {
  if (!state_) return false;
  std::lock_guard lock(state_->mu);
  return state_->done;
}

CallCompleter::CallCompleter(CallCallback callback)
    : state_(std::make_shared<detail::CallState>()) {
  state_->callback = std::move(callback);
}

void CallCompleter::Complete(Result<Bytes> result) const {
  CallCallback callback;
  {
    std::lock_guard lock(state_->mu);
    if (state_->done) return;  // first completion wins
    state_->result = std::move(result);
    state_->done = true;
    callback = std::move(state_->callback);
  }
  state_->cv.notify_all();
  // Outside the lock: the callback may Wait()/TryGet() the handle.
  if (callback) callback(state_->result);
}

Result<FrameHeader> DecodeFrameHeader(BytesView header, size_t max_body) {
  BinaryReader r(header);
  FrameHeader h{};
  TC_ASSIGN_OR_RETURN(h.body_len, r.GetU32());
  TC_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  TC_ASSIGN_OR_RETURN(h.request_id, r.GetU64());
  h.type = static_cast<MessageType>(type);
  if (h.body_len > max_body) {
    return InvalidArgument(
        "frame body of " + std::to_string(h.body_len) +
        " bytes exceeds the transport's max of " + std::to_string(max_body));
  }
  return h;
}

Bytes EncodeFrame(MessageType type, uint64_t request_id, BytesView body) {
  BinaryWriter w(body.size() + 16);
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(request_id);
  w.PutRaw(body);
  return std::move(w).Take();
}

Bytes EncodeResponseBody(const Status& status, BytesView payload) {
  BinaryWriter w(payload.size() + 32);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  w.PutRaw(payload);
  return std::move(w).Take();
}

Result<Bytes> DecodeResponseBody(BytesView body) {
  BinaryReader r(body);
  TC_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  TC_ASSIGN_OR_RETURN(std::string msg, r.GetString());
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  TC_ASSIGN_OR_RETURN(BytesView payload, r.GetRaw(r.remaining()));
  return Bytes(payload.begin(), payload.end());
}

}  // namespace tc::net
