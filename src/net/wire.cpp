#include "net/wire.hpp"

#include "common/io.hpp"

namespace tc::net {

Bytes EncodeFrame(MessageType type, uint64_t request_id, BytesView body) {
  BinaryWriter w(body.size() + 16);
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(request_id);
  w.PutRaw(body);
  return std::move(w).Take();
}

Bytes EncodeResponseBody(const Status& status, BytesView payload) {
  BinaryWriter w(payload.size() + 32);
  w.PutU8(static_cast<uint8_t>(status.code()));
  w.PutString(status.message());
  w.PutRaw(payload);
  return std::move(w).Take();
}

Result<Bytes> DecodeResponseBody(BytesView body) {
  BinaryReader r(body);
  TC_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  TC_ASSIGN_OR_RETURN(std::string msg, r.GetString());
  if (code != static_cast<uint8_t>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(code), std::move(msg));
  }
  TC_ASSIGN_OR_RETURN(BytesView payload, r.GetRaw(r.remaining()));
  return Bytes(payload.begin(), payload.end());
}

}  // namespace tc::net
