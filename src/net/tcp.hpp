// Multiplexed TCP transport.
//
// Server: listener with a reader thread per connection and a shared dispatch
// executor. Requests from one connection are processed concurrently —
// mutations in strict arrival order (a pipelined ingest stream must apply in
// send order), non-mutating requests freely interleaved — and responses are
// written back through a per-connection frame lock, so a slow query never
// head-of-line-blocks a Ping on the same connection.
//
// Client: framed request/response with request-id demultiplexing. One demux
// reader thread matches responses to in-flight calls, so many AsyncCalls can
// overlap on one socket and complete out of order; a connection error fans
// out to every pending call. Loopback-oriented (the E2E benchmarks and
// examples run client and server on one host, like the paper's mhealth
// setup).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/executor.hpp"
#include "net/wire.hpp"

namespace tc::net {

struct TcpServerOptions {
  /// Bind all interfaces instead of loopback — the replication topology
  /// needs it when peers dial back across machines (a daemon advertising a
  /// LAN address, a primary accepting remote followers).
  bool bind_any = false;
  /// Reject request frames whose body exceeds this many bytes with a clean
  /// error response (the header's body_len is attacker-controlled; it must
  /// never drive an allocation).
  size_t max_frame_body = kDefaultMaxFrameBody;
  /// Dispatch executor width, shared by all connections. 0 = one thread
  /// per hardware core, floored at 2 so same-connection concurrency exists
  /// even on a single-core host.
  size_t dispatch_threads = 0;
  /// Per-connection cap on requests being processed or queued at once; the
  /// connection's reader stops reading further frames when it is hit (TCP
  /// backpressure), bounding server memory against a client that pipelines
  /// faster than handlers drain.
  size_t max_inflight_per_conn = 32;
};

/// TCP server owning an accept loop. Start() binds and spawns the acceptor;
/// Stop() closes the listener and joins all threads.
class TcpServer {
 public:
  TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
            TcpServerOptions options);
  /// Compatibility constructor (pre-options call sites).
  TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
            bool bind_any = false);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen, spawn the accept loop. Port 0 picks a free port.
  Status Start();
  void Stop();

  uint16_t port() const { return port_; }

 private:
  /// Shared per-connection state. The fd closes when the last reference
  /// (reader thread or in-flight dispatch task) drops, never while a
  /// handler could still write to it.
  struct Conn;

  void AcceptLoop();
  void ServeConnection(std::shared_ptr<Conn> conn);
  void HandleRequest(const std::shared_ptr<Conn>& conn,
                     const FrameHeader& header, const Bytes& body);
  void DrainMutations(const std::shared_ptr<Conn>& conn);
  static void FinishRequest(const std::shared_ptr<Conn>& conn);

  std::shared_ptr<RequestHandler> handler_;
  uint16_t port_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::unique_ptr<Executor> dispatch_;
  Mutex threads_mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(threads_mu_);
  // Live connections, shut down on Stop().
  std::vector<std::shared_ptr<Conn>> connections_ GUARDED_BY(threads_mu_);
};

/// Client connection with request-id multiplexing: any number of AsyncCalls
/// may be in flight concurrently (from any threads); responses complete
/// them in whatever order the server answers.
class TcpClient final : public Transport {
 public:
  /// `connect_timeout_ms > 0` bounds the dial (non-blocking connect +
  /// poll); 0 keeps the OS default (blocking). `max_frame_body` bounds
  /// response frames — an oversized one fails the connection cleanly
  /// instead of driving an allocation.
  TC_BLOCKING static Result<std::unique_ptr<TcpClient>> Connect(
      const std::string& host, uint16_t port, int64_t connect_timeout_ms = 0,
      size_t max_frame_body = kDefaultMaxFrameBody);
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Bound every in-flight call: if the oldest pending request has seen no
  /// response within `timeout_ms`, the connection is failed and every
  /// pending call returns Unavailable. A peer that accepts the connection
  /// and then wedges must fail the calls, not hang the callers — heartbeat
  /// fan-out and takeover probes depend on this. An idle connection (no
  /// calls pending) never times out.
  Status SetOpTimeout(int64_t timeout_ms);

  PendingCall AsyncCall(MessageType type, BytesView body,
                        CallCallback on_done = nullptr) override;

 private:
  TcpClient(int fd, size_t max_frame_body);

  void ReaderLoop();
  /// Fail every pending call (and all future ones) with `status`.
  void FailConnection(const Status& status);
  void WakeReader();

  struct Pending {
    CallCompleter completer;
    int64_t deadline_ms = 0;  // steady-clock ms; 0 = no op timeout
  };

  const size_t max_frame_body_;
  int fd_;
  int wake_fds_[2] = {-1, -1};  // self-pipe: AsyncCall nudges the reader

  Mutex mu_;
  std::unordered_map<uint64_t, Pending> pending_ GUARDED_BY(mu_);
  uint64_t next_request_id_ GUARDED_BY(mu_) = 1;
  bool closed_ GUARDED_BY(mu_) = false;
  Status conn_status_ GUARDED_BY(mu_);

  Mutex write_mu_;  // serializes request frames onto the socket
  std::atomic<int64_t> op_timeout_ms_{0};
  std::thread reader_;
};

/// Read exactly n bytes / write all bytes on a socket fd (helpers shared by
/// server and client; exposed for tests). Both can park the caller in the
/// kernel until the peer drains or supplies bytes.
TC_BLOCKING Status ReadExact(int fd, MutableBytesView out);
TC_BLOCKING Status WriteAll(int fd, BytesView data);

}  // namespace tc::net
