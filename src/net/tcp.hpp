// Blocking TCP transport: listener with connection-per-thread dispatch on
// the server, framed request/response client. Loopback-oriented (the E2E
// benchmarks and examples run client and server on one host, like the
// paper's mhealth setup).
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hpp"

namespace tc::net {

/// TCP server owning an accept loop. Start() binds and spawns the acceptor;
/// Stop() closes the listener and joins all threads. Binds loopback by
/// default; `bind_any` opens all interfaces — the replication topology
/// needs it when peers dial back across machines (a daemon advertising a
/// LAN address, a primary accepting remote followers).
class TcpServer {
 public:
  TcpServer(std::shared_ptr<RequestHandler> handler, uint16_t port,
            bool bind_any = false);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind, listen, spawn the accept loop. Port 0 picks a free port.
  Status Start();
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::shared_ptr<RequestHandler> handler_;
  uint16_t port_;
  bool bind_any_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::mutex threads_mu_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;  // live fds, shut down on Stop()
};

/// Client connection. One in-flight request at a time per connection
/// (Call serializes internally); open several clients for parallelism.
class TcpClient final : public Transport {
 public:
  /// `connect_timeout_ms > 0` bounds the dial (non-blocking connect +
  /// poll); 0 keeps the OS default (blocking).
  static Result<std::unique_ptr<TcpClient>> Connect(
      const std::string& host, uint16_t port, int64_t connect_timeout_ms = 0);
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Bound every subsequent socket read/write. A peer that accepts the
  /// connection and then wedges must fail the Call, not hang the caller —
  /// heartbeat fan-out and takeover probes depend on this.
  Status SetOpTimeout(int64_t timeout_ms);

  Result<Bytes> Call(MessageType type, BytesView body) override;

 private:
  explicit TcpClient(int fd) : fd_(fd) {}

  std::mutex mu_;
  int fd_;
  uint64_t next_request_id_ = 1;
};

/// Read exactly n bytes / write all bytes on a socket fd (helpers shared by
/// server and client; exposed for tests).
Status ReadExact(int fd, MutableBytesView out);
Status WriteAll(int fd, BytesView data);

}  // namespace tc::net
