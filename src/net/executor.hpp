// Fire-and-forget task executor: a fixed set of worker threads draining a
// FIFO queue. Backs the TCP server's per-connection concurrent dispatch and
// the shard router's local scatter channels — anywhere a completion is
// produced asynchronously for a PendingCall. Deliberately minimal: no
// priorities, no stealing; submitters provide their own backpressure.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace tc::net {

class Executor {
 public:
  /// Spawns `num_threads` workers. 0 is allowed: Submit then runs the task
  /// inline on the calling thread (the single-shard / single-core case).
  explicit Executor(size_t num_threads);

  /// Drains every queued task (running, not dropping, them — completions
  /// must fire) and joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue one task. Never blocks (beyond the queue lock); tasks run in
  /// submission order across the worker set.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace tc::net
