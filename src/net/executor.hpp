// Fire-and-forget task executor: a fixed set of worker threads draining a
// FIFO queue. Backs the TCP server's per-connection concurrent dispatch and
// the shard router's local scatter channels — anywhere a completion is
// produced asynchronously for a PendingCall. Deliberately minimal: no
// priorities, no stealing; submitters provide their own backpressure.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "common/thread_annotations.hpp"

namespace tc::net {

class Executor {
 public:
  /// Spawns `num_threads` workers. 0 is allowed: Submit then runs the task
  /// inline on the calling thread (the single-shard / single-core case).
  /// A named pool reports tc_executor_queue_depth{pool=...} and
  /// tc_executor_dispatch_wait_seconds{pool=...} to the metrics registry;
  /// anonymous pools (tests, short-lived helpers) record nothing.
  explicit Executor(size_t num_threads, const char* pool_name = nullptr);

  /// Drains every queued task (running, not dropping, them — completions
  /// must fire) and joins the workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue one task. Never blocks (beyond the queue lock); tasks run in
  /// submission order across the worker set.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop() EXCLUDES(mu_);
  void RunTask(Task& task);

  Mutex mu_;
  CondVar cv_;
  std::deque<Task> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  // Null for anonymous pools; the referenced metrics live forever.
  metrics::Gauge* queue_depth_ = nullptr;
  metrics::LatencyHistogram* dispatch_wait_ = nullptr;
};

}  // namespace tc::net
