// Minimal HTTP/1.0 listener exposing the metrics registry in Prometheus
// text exposition format. One endpoint (`GET /metrics`), one thread, one
// request per connection — deliberately not a web server: the scrape path
// must never compete with the wire protocol for dispatch resources, and
// the response is built from a registry snapshot so a slow scraper cannot
// hold any registry lock.
//
// Binds loopback only: the exposition leaks operational detail (stream
// counts, lag, latency shape) and belongs behind the operator's own
// scraper, not on the data port.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/status.hpp"

namespace tc::net {

class MetricsHttpServer {
 public:
  /// `pre_collect` (optional) runs before each scrape renders the registry
  /// — the hook that refreshes gauges derived from engine state (stream
  /// counts, follower lag). Port 0 picks an ephemeral port (tests).
  explicit MetricsHttpServer(uint16_t port,
                             std::function<void()> pre_collect = nullptr);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Bind + listen + spawn the serving thread.
  Status Start();
  void Stop();

  /// Bound port (after Start with port 0 resolves the ephemeral port).
  uint16_t port() const { return port_; }

 private:
  void ServeLoop();
  void ServeOne(int fd);

  uint16_t port_;
  std::function<void()> pre_collect_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread server_;
};

}  // namespace tc::net
