#include "store/log_kv.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/io.hpp"
#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace tc::store {

namespace {
constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordTombstone = 2;

/// Process-wide log-store op counters (all LogKvStore instances sum into
/// one family; per-shard splits come from the kClusterInfo gauges).
struct StoreOps {
  metrics::Counter& puts;
  metrics::Counter& gets;
  metrics::Counter& deletes;
  metrics::Counter& syncs;
  metrics::Counter& compactions;
};

StoreOps& Ops() {
  static StoreOps ops{metrics::GetCounter("tc_store_puts_total"),
                      metrics::GetCounter("tc_store_gets_total"),
                      metrics::GetCounter("tc_store_deletes_total"),
                      metrics::GetCounter("tc_store_syncs_total"),
                      metrics::GetCounter("tc_store_compactions_total")};
  return ops;
}
}  // namespace

LogKvStore::LogKvStore(std::string path, LogKvOptions options)
    : path_(std::move(path)), options_(options) {}

LogKvStore::~LogKvStore() {
  MutexLock lock(mu_);
  if (log_ != nullptr) std::fclose(log_);
}

Result<std::unique_ptr<LogKvStore>> LogKvStore::Open(const std::string& path,
                                                     LogKvOptions options) {
  auto store = std::unique_ptr<LogKvStore>(new LogKvStore(path, options));
  // The store has not escaped this function yet, so the lock is
  // uncontended; taking it anyway keeps Replay under the same capability
  // as every other map_/log_ access.
  MutexLock lock(store->mu_);
  TC_RETURN_IF_ERROR(store->Replay());
  store->log_ = std::fopen(path.c_str(), "ab");
  if (store->log_ == nullptr) {
    return Unavailable("cannot open log file: " + path);
  }
  return store;
}

Status LogKvStore::Replay() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // fresh store
  // Read the whole log; individual records are length-prefixed.
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return DataLoss("short read replaying log: " + path_);
  }
  std::fclose(f);

  BinaryReader r(data);
  size_t valid_end = 0;  // offset just past the last complete record
  while (!r.AtEnd()) {
    auto type = r.GetU8();
    auto key = r.GetString();
    if (!type.ok() || !key.ok()) break;  // torn tail write
    if (*type == kRecordPut) {
      auto value = r.GetBytes();
      if (!value.ok()) break;
      auto [it, inserted] = map_.try_emplace(*key);
      if (!inserted) {
        dead_bytes_ += it->second.size();
        value_bytes_ -= it->second.size();
      }
      it->second = std::move(*value);
      value_bytes_ += it->second.size();
    } else if (*type == kRecordTombstone) {
      auto it = map_.find(*key);
      if (it != map_.end()) {
        dead_bytes_ += it->second.size();
        value_bytes_ -= it->second.size();
        map_.erase(it);
      }
    } else {
      break;  // garbage tail (crash mid-write): recover the valid prefix
    }
    valid_end = r.position();
  }
  if (valid_end < data.size()) {
    // Drop the torn tail so future appends follow a well-formed record —
    // otherwise the next Replay would stop at the garbage and lose them.
    TC_RETURN_IF_ERROR(TruncateTo(valid_end));
  }
  return Status::Ok();
}

Status LogKvStore::TruncateTo(size_t size) {
  // POSIX truncate by path: Replay runs before the append handle opens.
  if (::truncate(path_.c_str(), static_cast<off_t>(size)) != 0) {
    return Unavailable("cannot truncate torn log tail: " + path_);
  }
  return Status::Ok();
}

Status LogKvStore::AppendRecord(const std::string& key, BytesView value,
                                bool tombstone) {
  // A failed compaction can lose the append handle (reopen failed); refuse
  // writes instead of fwrite-ing into a null stream.
  if (log_ == nullptr) {
    return Unavailable("log append handle closed (failed compaction?): " +
                       path_);
  }
  BinaryWriter w(key.size() + value.size() + 16);
  w.PutU8(tombstone ? kRecordTombstone : kRecordPut);
  w.PutString(key);
  if (!tombstone) w.PutBytes(value);
  if (std::fwrite(w.data().data(), 1, w.size(), log_) != w.size()) {
    return Unavailable("log append failed");
  }
  ++append_seq_;
  return Status::Ok();
}

void LogKvStore::MaybeAutoCompactLocked() {
  if (options_.compact_dead_fraction <= 0.0) return;
  if (dead_bytes_ < options_.compact_min_dead_bytes) return;
  if (dead_bytes_ < compact_backoff_dead_bytes_) return;
  size_t total = value_bytes_ + dead_bytes_;
  if (static_cast<double>(dead_bytes_) <=
      options_.compact_dead_fraction * static_cast<double>(total)) {
    return;
  }
  // Best-effort: an auto-compaction failure (e.g. disk full for the rewrite
  // copy) must not fail the Put/Delete that tripped it — the log is still
  // correct, just fat. Don't immediately retry a full O(store) rewrite on
  // every subsequent write either: back off until another min_dead_bytes of
  // churn accumulates (the backoff resets when any compaction succeeds).
  auto compacted = CompactLocked();
  if (!compacted.ok()) {
    TC_LOG_WARN << "auto-compaction of " << path_
                << " failed: " << compacted.status().ToString();
    compact_backoff_dead_bytes_ =
        dead_bytes_ + std::max(options_.compact_min_dead_bytes,
                               size_t{1} << 20);
  }
}

Status LogKvStore::Put(const std::string& key, BytesView value) {
  if constexpr (metrics::kEnabled) Ops().puts.Inc();
  MutexLock lock(mu_);
  TC_RETURN_IF_ERROR(AppendRecord(key, value, /*tombstone=*/false));
  auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) {
    dead_bytes_ += it->second.size();
    value_bytes_ -= it->second.size();
  }
  it->second.assign(value.begin(), value.end());
  value_bytes_ += value.size();
  MaybeAutoCompactLocked();
  return Status::Ok();
}

Result<Bytes> LogKvStore::Get(const std::string& key) const {
  if constexpr (metrics::kEnabled) Ops().gets.Inc();
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return NotFound("key not found: " + key);
  return it->second;
}

Status LogKvStore::Delete(const std::string& key) {
  if constexpr (metrics::kEnabled) Ops().deletes.Inc();
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return NotFound("key not found: " + key);
  TC_RETURN_IF_ERROR(AppendRecord(key, {}, /*tombstone=*/true));
  dead_bytes_ += it->second.size();
  value_bytes_ -= it->second.size();
  map_.erase(it);
  MaybeAutoCompactLocked();
  return Status::Ok();
}

bool LogKvStore::Contains(const std::string& key) const {
  MutexLock lock(mu_);
  return map_.contains(key);
}

size_t LogKvStore::Size() const {
  MutexLock lock(mu_);
  return map_.size();
}

size_t LogKvStore::ValueBytes() const {
  MutexLock lock(mu_);
  return value_bytes_;
}

Status LogKvStore::Scan(
    const std::function<void(const std::string&, BytesView)>& fn) const {
  // mu_ is held for the whole walk, so a scan is an atomic snapshot and a
  // concurrent Compact() cannot interleave (it rewrites under this mutex).
  MutexLock lock(mu_);
  for (const auto& [key, value] : map_) fn(key, value);
  return Status::Ok();
}

Result<size_t> LogKvStore::Compact() {
  MutexLock lock(mu_);
  return CompactLocked();
}

Result<size_t> LogKvStore::CompactLocked() {
  std::string tmp_path = path_ + ".compact";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return Unavailable("cannot open compaction file");

  for (const auto& [key, value] : map_) {
    BinaryWriter w(key.size() + value.size() + 16);
    w.PutU8(kRecordPut);
    w.PutString(key);
    w.PutBytes(value);
    if (std::fwrite(w.data().data(), 1, w.size(), tmp) != w.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return Unavailable("compaction write failed");
    }
  }
  std::fclose(tmp);
  std::fclose(log_);
  log_ = nullptr;
  // Closing the old handle flushed it, so every record appended so far is
  // on disk in whichever file survives below.
  flushed_seq_ = append_seq_;
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    // The old log is intact at path_; reopen it so appends keep working.
    std::remove(tmp_path.c_str());
    log_ = std::fopen(path_.c_str(), "ab");
    return Unavailable("compaction rename failed");
  }
  size_t reclaimed = dead_bytes_;
  dead_bytes_ = 0;
  ++compactions_;
  if constexpr (metrics::kEnabled) Ops().compactions.Inc();
  trace::RecordEvent("store_compaction", trace::kNoShard,
                     path_ + " reclaimed=" + std::to_string(reclaimed));
  compact_backoff_dead_bytes_ = 0;  // a successful rewrite clears the backoff
  log_ = std::fopen(path_.c_str(), "ab");
  if (log_ == nullptr) return Unavailable("cannot reopen log");
  return reclaimed;
}

Status LogKvStore::Sync() {
  if constexpr (metrics::kEnabled) Ops().syncs.Inc();
  MutexLock lock(mu_);
  if (log_ == nullptr) return Status::Ok();
  // Group commit: if a concurrent caller's flush already covered every
  // record appended before this Sync, skip the (expensive) flush entirely.
  if (flushed_seq_ >= append_seq_) return Status::Ok();
  if (std::fflush(log_) != 0) {
    return Unavailable("fflush failed");
  }
  flushed_seq_ = append_seq_;
  return Status::Ok();
}

size_t LogKvStore::DeadBytes() const {
  MutexLock lock(mu_);
  return dead_bytes_;
}

uint64_t LogKvStore::CompactionCount() const {
  MutexLock lock(mu_);
  return compactions_;
}

store::KvStore::CompactionStats LogKvStore::Compaction() const {
  MutexLock lock(mu_);
  return {compactions_, dead_bytes_};
}

}  // namespace tc::store
