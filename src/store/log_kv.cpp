#include "store/log_kv.hpp"

#include <unistd.h>

#include <cstring>

#include "common/io.hpp"

namespace tc::store {

namespace {
constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordTombstone = 2;
}  // namespace

LogKvStore::LogKvStore(std::string path) : path_(std::move(path)) {}

LogKvStore::~LogKvStore() {
  if (log_ != nullptr) std::fclose(log_);
}

Result<std::unique_ptr<LogKvStore>> LogKvStore::Open(const std::string& path) {
  auto store = std::unique_ptr<LogKvStore>(new LogKvStore(path));
  TC_RETURN_IF_ERROR(store->Replay());
  store->log_ = std::fopen(path.c_str(), "ab");
  if (store->log_ == nullptr) {
    return Unavailable("cannot open log file: " + path);
  }
  return store;
}

Status LogKvStore::Replay() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // fresh store
  // Read the whole log; individual records are length-prefixed.
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  if (size > 0 && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    return DataLoss("short read replaying log: " + path_);
  }
  std::fclose(f);

  BinaryReader r(data);
  size_t valid_end = 0;  // offset just past the last complete record
  while (!r.AtEnd()) {
    auto type = r.GetU8();
    auto key = r.GetString();
    if (!type.ok() || !key.ok()) break;  // torn tail write
    if (*type == kRecordPut) {
      auto value = r.GetBytes();
      if (!value.ok()) break;
      auto [it, inserted] = map_.try_emplace(*key);
      if (!inserted) {
        dead_bytes_ += it->second.size();
        value_bytes_ -= it->second.size();
      }
      it->second = std::move(*value);
      value_bytes_ += it->second.size();
    } else if (*type == kRecordTombstone) {
      auto it = map_.find(*key);
      if (it != map_.end()) {
        dead_bytes_ += it->second.size();
        value_bytes_ -= it->second.size();
        map_.erase(it);
      }
    } else {
      break;  // garbage tail (crash mid-write): recover the valid prefix
    }
    valid_end = r.position();
  }
  if (valid_end < data.size()) {
    // Drop the torn tail so future appends follow a well-formed record —
    // otherwise the next Replay would stop at the garbage and lose them.
    TC_RETURN_IF_ERROR(TruncateTo(valid_end));
  }
  return Status::Ok();
}

Status LogKvStore::TruncateTo(size_t size) {
  // POSIX truncate by path: Replay runs before the append handle opens.
  if (::truncate(path_.c_str(), static_cast<off_t>(size)) != 0) {
    return Unavailable("cannot truncate torn log tail: " + path_);
  }
  return Status::Ok();
}

Status LogKvStore::AppendRecord(const std::string& key, BytesView value,
                                bool tombstone) {
  BinaryWriter w(key.size() + value.size() + 16);
  w.PutU8(tombstone ? kRecordTombstone : kRecordPut);
  w.PutString(key);
  if (!tombstone) w.PutBytes(value);
  if (std::fwrite(w.data().data(), 1, w.size(), log_) != w.size()) {
    return Unavailable("log append failed");
  }
  return Status::Ok();
}

Status LogKvStore::Put(const std::string& key, BytesView value) {
  std::lock_guard lock(mu_);
  TC_RETURN_IF_ERROR(AppendRecord(key, value, /*tombstone=*/false));
  auto [it, inserted] = map_.try_emplace(key);
  if (!inserted) {
    dead_bytes_ += it->second.size();
    value_bytes_ -= it->second.size();
  }
  it->second.assign(value.begin(), value.end());
  value_bytes_ += value.size();
  return Status::Ok();
}

Result<Bytes> LogKvStore::Get(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return NotFound("key not found: " + key);
  return it->second;
}

Status LogKvStore::Delete(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return NotFound("key not found: " + key);
  TC_RETURN_IF_ERROR(AppendRecord(key, {}, /*tombstone=*/true));
  dead_bytes_ += it->second.size();
  value_bytes_ -= it->second.size();
  map_.erase(it);
  return Status::Ok();
}

bool LogKvStore::Contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  return map_.contains(key);
}

size_t LogKvStore::Size() const {
  std::lock_guard lock(mu_);
  return map_.size();
}

size_t LogKvStore::ValueBytes() const {
  std::lock_guard lock(mu_);
  return value_bytes_;
}

Result<size_t> LogKvStore::Compact() {
  std::lock_guard lock(mu_);
  std::string tmp_path = path_ + ".compact";
  std::FILE* tmp = std::fopen(tmp_path.c_str(), "wb");
  if (tmp == nullptr) return Unavailable("cannot open compaction file");

  for (const auto& [key, value] : map_) {
    BinaryWriter w(key.size() + value.size() + 16);
    w.PutU8(kRecordPut);
    w.PutString(key);
    w.PutBytes(value);
    if (std::fwrite(w.data().data(), 1, w.size(), tmp) != w.size()) {
      std::fclose(tmp);
      std::remove(tmp_path.c_str());
      return Unavailable("compaction write failed");
    }
  }
  std::fclose(tmp);
  std::fclose(log_);
  log_ = nullptr;
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Unavailable("compaction rename failed");
  }
  log_ = std::fopen(path_.c_str(), "ab");
  if (log_ == nullptr) return Unavailable("cannot reopen log");
  size_t reclaimed = dead_bytes_;
  dead_bytes_ = 0;
  return reclaimed;
}

Status LogKvStore::Sync() {
  std::lock_guard lock(mu_);
  if (log_ != nullptr && std::fflush(log_) != 0) {
    return Unavailable("fflush failed");
  }
  return Status::Ok();
}

}  // namespace tc::store
