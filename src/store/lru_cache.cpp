#include "store/lru_cache.hpp"

#include "common/metrics.hpp"

namespace tc::store {

namespace {
/// Process-wide cache counters (every LruCache sums into one family —
/// the hit-ratio signal for the index node caches).
metrics::Counter& CacheHits() {
  static metrics::Counter& c =
      metrics::GetCounter("tc_index_cache_hits_total");
  return c;
}
metrics::Counter& CacheMisses() {
  static metrics::Counter& c =
      metrics::GetCounter("tc_index_cache_misses_total");
  return c;
}
}  // namespace

void LruCache::Put(const std::string& key, BytesView value) {
  MutexLock lock(mu_);
  if (value.size() > capacity_) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    bytes_ -= it->second->value.size();
    it->second->value.assign(value.begin(), value.end());
    bytes_ += value.size();
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, Bytes(value.begin(), value.end())});
    map_[key] = lru_.begin();
    bytes_ += value.size();
  }
  EvictIfNeededLocked();
}

std::optional<Bytes> LruCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    if constexpr (metrics::kEnabled) CacheMisses().Inc();
    return std::nullopt;
  }
  ++hits_;
  if constexpr (metrics::kEnabled) CacheHits().Inc();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void LruCache::Erase(const std::string& key) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return;
  bytes_ -= it->second->value.size();
  lru_.erase(it->second);
  map_.erase(it);
}

void LruCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  map_.clear();
  bytes_ = 0;
}

size_t LruCache::size_bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

size_t LruCache::entry_count() const {
  MutexLock lock(mu_);
  return lru_.size();
}

// The stats were lock-free reads of non-atomic counters mutated under mu_ —
// a torn-read race the annotation sweep surfaced (GUARDED_BY rejects the
// old inline accessors). Locked reads also make hits+misses exactly equal
// the number of completed Gets, which the concurrency drill asserts.
uint64_t LruCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}

uint64_t LruCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

void LruCache::EvictIfNeededLocked() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    bytes_ -= victim.value.size();
    map_.erase(victim.key);
    lru_.pop_back();
  }
}

}  // namespace tc::store
