// Key-value storage abstraction — TimeCrypt's persistence layer (§4.6:
// "TimeCrypt can be plugged-in with any scalable key-value store"). The
// paper's prototype uses Cassandra; this library ships an in-memory sharded
// store and a file-backed log store, both behind this interface. Index node
// and chunk identifiers are computed on the fly from (stream, level, index)
// so no scans are ever needed — exactly the paper's storage model.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace tc::store {

/// Minimal KV contract. Implementations must be thread-safe.
class KvStore {
 public:
  /// Compaction pressure of a log-structured store (cluster-info
  /// observability). Stores without a compaction cycle report zeros;
  /// decorators forward to the store they wrap — a prefix view over a
  /// shared log reports the whole log's pressure, which is what an
  /// operator watching disk usage wants.
  struct CompactionStats {
    uint64_t compactions = 0;  // compaction passes run (explicit + auto)
    uint64_t dead_bytes = 0;   // dead value bytes awaiting compaction
  };

  virtual ~KvStore() = default;

  virtual Status Put(const std::string& key, BytesView value) = 0;
  virtual Result<Bytes> Get(const std::string& key) const = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual bool Contains(const std::string& key) const = 0;

  /// Number of stored entries (approximate under concurrency).
  virtual size_t Size() const = 0;

  /// Total bytes of stored values (approximate; for memory accounting).
  virtual size_t ValueBytes() const = 0;

  /// Flush buffered writes toward stable storage. No-op for volatile
  /// stores; durable stores (LogKvStore) override with a group-committing
  /// flush so many callers share one flush of the same appends. Blocking:
  /// a durable Sync parks the caller on fsync — never call it with a
  /// tc::Mutex held (tc_analyze B1).
  TC_BLOCKING virtual Status Sync() { return Status::Ok(); }

  /// Visit every (key, value) pair in unspecified order. The callback MUST
  /// NOT call back into this store (implementations iterate under their
  /// internal locks). Normal data paths never need this — identifiers are
  /// computed, not discovered — it exists for whole-store operations:
  /// replication snapshots ship a follower the complete state, and tests
  /// compare stores byte-for-byte. Decorators without a natural iteration
  /// inherit the Unimplemented default.
  virtual Status Scan(
      const std::function<void(const std::string& key, BytesView value)>& fn)
      const {
    (void)fn;
    return Unimplemented("store does not support Scan");
  }

  /// Compaction pressure; zeros unless the backing store is log-structured.
  virtual CompactionStats Compaction() const { return {}; }
};

}  // namespace tc::store
