// Fault-injecting KV decorator: deterministic failure and corruption
// schedules for chaos-testing the layers above the store (server engine,
// aggregation index, clients). The paper's deployment rides on Cassandra,
// which can time out, drop connections, or return stale/garbled data under
// partition — this wrapper lets tests exercise exactly those paths without
// a real cluster.
#pragma once

#include <atomic>
#include <memory>

#include "store/kv_store.hpp"

namespace tc::store {

/// Failure schedule. All counters are per-operation-kind and 1-based:
/// `fail_every_nth_get = 3` fails the 3rd, 6th, 9th... Get. Zero disables
/// that fault. `fail_all` overrides everything (a hard outage).
struct FaultOptions {
  uint64_t fail_every_nth_put = 0;
  uint64_t fail_every_nth_get = 0;
  uint64_t fail_every_nth_delete = 0;
  /// Corrupt (flip one byte of) the value returned by every nth Get. The
  /// stored data is untouched — simulates a read-path bit flip / stale
  /// replica, the case end-to-end integrity checking must catch.
  uint64_t corrupt_every_nth_get = 0;
  bool fail_all = false;
  StatusCode failure_code = StatusCode::kUnavailable;
};

/// Thread-safe decorator; schedules apply process-wide across threads.
class FaultKvStore final : public KvStore {
 public:
  FaultKvStore(std::shared_ptr<KvStore> inner, FaultOptions options = {});

  Status Put(const std::string& key, BytesView value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  size_t ValueBytes() const override;
  /// Scans fail only under the hard outage (no per-nth schedule: one scan
  /// is one logical operation, not a countable stream of faults).
  Status Scan(const std::function<void(const std::string&, BytesView)>& fn)
      const override;
  CompactionStats Compaction() const override { return inner_->Compaction(); }

  /// Flip the hard-outage switch (all operations fail until cleared).
  /// Atomic: tests flip it from their own thread while shipper / failover
  /// monitor threads are mid-operation.
  void SetFailAll(bool fail_all) {
    fail_all_.store(fail_all, std::memory_order_release);
  }

  /// Injected-failure counters (tests assert faults actually fired).
  uint64_t puts_failed() const { return puts_failed_; }
  uint64_t gets_failed() const { return gets_failed_; }
  uint64_t gets_corrupted() const { return gets_corrupted_; }
  uint64_t deletes_failed() const { return deletes_failed_; }

 private:
  Status Fault() const;
  bool FailAll() const { return fail_all_.load(std::memory_order_acquire); }

  std::shared_ptr<KvStore> inner_;
  FaultOptions options_;
  std::atomic<bool> fail_all_;  // seeded from options_, runtime-flippable
  mutable std::atomic<uint64_t> put_ops_{0};
  mutable std::atomic<uint64_t> get_ops_{0};
  mutable std::atomic<uint64_t> delete_ops_{0};
  mutable std::atomic<uint64_t> puts_failed_{0};
  mutable std::atomic<uint64_t> gets_failed_{0};
  mutable std::atomic<uint64_t> gets_corrupted_{0};
  mutable std::atomic<uint64_t> deletes_failed_{0};
};

}  // namespace tc::store
