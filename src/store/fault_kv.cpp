#include "store/fault_kv.hpp"

namespace tc::store {

namespace {
bool ShouldFire(std::atomic<uint64_t>& counter, uint64_t every_nth) {
  if (every_nth == 0) return false;
  return (counter.fetch_add(1) + 1) % every_nth == 0;
}
}  // namespace

FaultKvStore::FaultKvStore(std::shared_ptr<KvStore> inner,
                           FaultOptions options)
    : inner_(std::move(inner)), options_(options), fail_all_(options.fail_all) {}

Status FaultKvStore::Fault() const {
  return {options_.failure_code, "injected fault"};
}

Status FaultKvStore::Put(const std::string& key, BytesView value) {
  if (FailAll() || ShouldFire(put_ops_, options_.fail_every_nth_put)) {
    ++puts_failed_;
    return Fault();
  }
  return inner_->Put(key, value);
}

Result<Bytes> FaultKvStore::Get(const std::string& key) const {
  if (FailAll() || ShouldFire(get_ops_, options_.fail_every_nth_get)) {
    ++gets_failed_;
    return Fault();
  }
  auto value = inner_->Get(key);
  if (value.ok() && !value->empty() &&
      ShouldFire(get_ops_, options_.corrupt_every_nth_get)) {
    ++gets_corrupted_;
    (*value)[value->size() / 2] ^= 0x5a;
  }
  return value;
}

Status FaultKvStore::Delete(const std::string& key) {
  if (FailAll() ||
      ShouldFire(delete_ops_, options_.fail_every_nth_delete)) {
    ++deletes_failed_;
    return Fault();
  }
  return inner_->Delete(key);
}

bool FaultKvStore::Contains(const std::string& key) const {
  if (FailAll()) return false;
  return inner_->Contains(key);
}

Status FaultKvStore::Scan(
    const std::function<void(const std::string&, BytesView)>& fn) const {
  if (FailAll()) return Fault();
  return inner_->Scan(fn);
}

size_t FaultKvStore::Size() const { return inner_->Size(); }

size_t FaultKvStore::ValueBytes() const { return inner_->ValueBytes(); }

}  // namespace tc::store
