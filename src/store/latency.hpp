// Latency-injecting KV decorator: emulates the network round trip to a
// remote store (the paper's client<->Cassandra hop, ~0.6 ms in their
// testbed) so end-to-end experiments exercise realistic cache-miss costs.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "store/kv_store.hpp"

namespace tc::store {

class LatencyKvStore final : public KvStore {
 public:
  LatencyKvStore(std::shared_ptr<KvStore> inner,
                 std::chrono::microseconds per_op_latency)
      : inner_(std::move(inner)), latency_(per_op_latency) {}

  Status Put(const std::string& key, BytesView value) override {
    Delay();
    return inner_->Put(key, value);
  }
  Result<Bytes> Get(const std::string& key) const override {
    Delay();
    return inner_->Get(key);
  }
  Status Delete(const std::string& key) override {
    Delay();
    return inner_->Delete(key);
  }
  bool Contains(const std::string& key) const override {
    Delay();
    return inner_->Contains(key);
  }
  size_t Size() const override { return inner_->Size(); }
  size_t ValueBytes() const override { return inner_->ValueBytes(); }
  Status Scan(const std::function<void(const std::string&, BytesView)>& fn)
      const override {
    Delay();  // one round trip: a remote scan streams, it does not chat
    return inner_->Scan(fn);
  }
  CompactionStats Compaction() const override { return inner_->Compaction(); }

  uint64_t ops() const { return ops_.load(); }

 private:
  void Delay() const {
    ++ops_;
    if (latency_.count() == 0) return;
    // Spin for sub-millisecond delays: sleep granularity is too coarse.
    auto deadline = std::chrono::steady_clock::now() + latency_;
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }

  std::shared_ptr<KvStore> inner_;
  std::chrono::microseconds latency_;
  mutable std::atomic<uint64_t> ops_{0};
};

}  // namespace tc::store
