// Byte-budget LRU cache for index nodes (the paper's caffeine cache, §5).
// The Fig 7 "small cache (1 MB)" experiment shrinks this budget to force
// cache misses against the backing store.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/thread_annotations.hpp"

namespace tc::store {

/// Thread-safe LRU keyed by string, holding byte buffers, evicting by total
/// value-byte budget.
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Insert or refresh. Values larger than the whole budget are not cached.
  void Put(const std::string& key, BytesView value) EXCLUDES(mu_);

  /// Fetch + mark most recently used.
  std::optional<Bytes> Get(const std::string& key) EXCLUDES(mu_);

  void Erase(const std::string& key) EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

  size_t size_bytes() const EXCLUDES(mu_);
  size_t entry_count() const EXCLUDES(mu_);
  uint64_t hits() const EXCLUDES(mu_);
  uint64_t misses() const EXCLUDES(mu_);

 private:
  struct Entry {
    std::string key;
    Bytes value;
  };

  void EvictIfNeededLocked() REQUIRES(mu_);

  mutable Mutex mu_;
  const size_t capacity_;
  size_t bytes_ GUARDED_BY(mu_) = 0;
  std::list<Entry> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_
      GUARDED_BY(mu_);
  uint64_t hits_ GUARDED_BY(mu_) = 0;
  uint64_t misses_ GUARDED_BY(mu_) = 0;
};

}  // namespace tc::store
