// Byte-budget LRU cache for index nodes (the paper's caffeine cache, §5).
// The Fig 7 "small cache (1 MB)" experiment shrinks this budget to force
// cache misses against the backing store.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"

namespace tc::store {

/// Thread-safe LRU keyed by string, holding byte buffers, evicting by total
/// value-byte budget.
class LruCache {
 public:
  explicit LruCache(size_t capacity_bytes) : capacity_(capacity_bytes) {}

  /// Insert or refresh. Values larger than the whole budget are not cached.
  void Put(const std::string& key, BytesView value);

  /// Fetch + mark most recently used.
  std::optional<Bytes> Get(const std::string& key);

  void Erase(const std::string& key);
  void Clear();

  size_t size_bytes() const;
  size_t entry_count() const;
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    Bytes value;
  };

  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  size_t bytes_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tc::store
