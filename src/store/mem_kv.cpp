#include "store/mem_kv.hpp"

namespace tc::store {

MemKvStore::MemKvStore(size_t num_shards)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      shards_(std::make_unique<Shard[]>(num_shards_)) {}

MemKvStore::Shard& MemKvStore::ShardFor(const std::string& key) const {
  size_t h = std::hash<std::string>{}(key);
  return shards_[h % num_shards_];
}

Status MemKvStore::Put(const std::string& key, BytesView value) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key);
  if (!inserted) shard.value_bytes -= it->second.size();
  it->second.assign(value.begin(), value.end());
  shard.value_bytes += value.size();
  return Status::Ok();
}

Result<Bytes> MemKvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return NotFound("key not found: " + key);
  return it->second;
}

Status MemKvStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return NotFound("key not found: " + key);
  shard.value_bytes -= it->second.size();
  shard.map.erase(it);
  return Status::Ok();
}

bool MemKvStore::Contains(const std::string& key) const {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  return shard.map.contains(key);
}

size_t MemKvStore::Size() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    MutexLock lock(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

Status MemKvStore::Scan(
    const std::function<void(const std::string&, BytesView)>& fn) const {
  // One shard lock at a time: the visit is not an atomic snapshot across
  // shards (same contract as Size under concurrency).
  for (size_t i = 0; i < num_shards_; ++i) {
    MutexLock lock(shards_[i].mu);
    for (const auto& [key, value] : shards_[i].map) fn(key, value);
  }
  return Status::Ok();
}

size_t MemKvStore::ValueBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    MutexLock lock(shards_[i].mu);
    total += shards_[i].value_bytes;
  }
  return total;
}

}  // namespace tc::store
