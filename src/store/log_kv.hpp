// File-backed KV store: append-only value log with an in-memory index.
// Gives the repository a durable storage engine so examples and tests can
// exercise persistence/restart paths (the paper's Cassandra layer persists
// to disk; this is our single-node equivalent).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "store/kv_store.hpp"

namespace tc::store {

struct LogKvOptions {
  /// Auto-compact when dead value bytes exceed this fraction of the total
  /// (live + dead) value bytes. 0 disables auto-compaction (the default:
  /// explicit Compact() only). Checked after every Put/Delete, so a
  /// long-running shard's log stays bounded without an external trigger.
  double compact_dead_fraction = 0.0;
  /// Never auto-compact below this many dead bytes — rewriting a tiny log
  /// on every overwrite would trade one wasted byte for a full rewrite.
  size_t compact_min_dead_bytes = 1 << 20;
};

/// Log-structured store. Writes append `keylen key vallen value` records to
/// a single log file; Get serves from an in-memory map populated at open.
/// Deletes append a tombstone. Compact() rewrites the log dropping dead
/// records; with LogKvOptions::compact_dead_fraction set it also triggers
/// automatically once dead bytes dominate.
class LogKvStore final : public KvStore {
 public:
  /// Opens (or creates) the log at `path` and replays it.
  static Result<std::unique_ptr<LogKvStore>> Open(const std::string& path,
                                                  LogKvOptions options = {});

  ~LogKvStore() override;

  Status Put(const std::string& key, BytesView value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  size_t ValueBytes() const override;
  Status Scan(const std::function<void(const std::string&, BytesView)>& fn)
      const override;

  /// Rewrite the log keeping only live records. Returns bytes reclaimed.
  Result<size_t> Compact();

  /// Flush buffered writes to the OS. Group-committed: appends carry a
  /// sequence number, and a Sync whose appends were already covered by a
  /// concurrent caller's flush returns without touching the file — N
  /// ingest threads share one flush per batch window.
  TC_BLOCKING Status Sync() override;

  /// Dead (overwritten/tombstoned) value bytes awaiting compaction.
  size_t DeadBytes() const;
  /// Number of compactions run (explicit + automatic) — observability for
  /// the auto-compaction trigger.
  uint64_t CompactionCount() const;
  /// Both of the above in one locked read (kClusterInfo reporting).
  CompactionStats Compaction() const override;

 private:
  LogKvStore(std::string path, LogKvOptions options);

  Status Replay() REQUIRES(mu_);
  /// Drop a torn tail discovered during replay (crash-recovery path).
  Status TruncateTo(size_t size);
  Status AppendRecord(const std::string& key, BytesView value,
                      bool tombstone) REQUIRES(mu_);
  /// Compact() body.
  Result<size_t> CompactLocked() REQUIRES(mu_);
  /// Run CompactLocked() if the dead-byte threshold is crossed.
  void MaybeAutoCompactLocked() REQUIRES(mu_);

  std::string path_;
  LogKvOptions options_;
  mutable Mutex mu_;
  std::FILE* log_ GUARDED_BY(mu_) = nullptr;
  std::unordered_map<std::string, Bytes> map_ GUARDED_BY(mu_);
  size_t value_bytes_ GUARDED_BY(mu_) = 0;
  size_t dead_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t compactions_ GUARDED_BY(mu_) = 0;
  // After a failed auto-compaction, don't retry until dead bytes reach
  // this level (0 = no backoff; reset by any successful compaction).
  size_t compact_backoff_dead_bytes_ GUARDED_BY(mu_) = 0;
  // Group-commit bookkeeping: records appended vs records covered by the
  // last flush. Sync() is a no-op when another caller already flushed past
  // our appends.
  uint64_t append_seq_ GUARDED_BY(mu_) = 0;
  uint64_t flushed_seq_ GUARDED_BY(mu_) = 0;
};

}  // namespace tc::store
