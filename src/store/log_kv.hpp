// File-backed KV store: append-only value log with an in-memory index.
// Gives the repository a durable storage engine so examples and tests can
// exercise persistence/restart paths (the paper's Cassandra layer persists
// to disk; this is our single-node equivalent).
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "store/kv_store.hpp"

namespace tc::store {

/// Log-structured store. Writes append `keylen key vallen value` records to
/// a single log file; Get serves from an in-memory map populated at open.
/// Deletes append a tombstone. Compact() rewrites the log dropping dead
/// records.
class LogKvStore final : public KvStore {
 public:
  /// Opens (or creates) the log at `path` and replays it.
  static Result<std::unique_ptr<LogKvStore>> Open(const std::string& path);

  ~LogKvStore() override;

  Status Put(const std::string& key, BytesView value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  size_t ValueBytes() const override;

  /// Rewrite the log keeping only live records. Returns bytes reclaimed.
  Result<size_t> Compact();

  /// Flush buffered writes to the OS.
  Status Sync();

 private:
  explicit LogKvStore(std::string path);

  Status Replay();
  /// Drop a torn tail discovered during replay (crash-recovery path).
  Status TruncateTo(size_t size);
  Status AppendRecord(const std::string& key, BytesView value,
                      bool tombstone);

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* log_ = nullptr;
  std::unordered_map<std::string, Bytes> map_;
  size_t value_bytes_ = 0;
  size_t dead_bytes_ = 0;
};

}  // namespace tc::store
