#include "store/prefix_kv.hpp"

namespace tc::store {

PrefixKvStore::PrefixKvStore(std::shared_ptr<KvStore> backend,
                             std::string prefix)
    : backend_(std::move(backend)), prefix_(std::move(prefix)) {}

Status PrefixKvStore::Put(const std::string& key, BytesView value) {
  return backend_->Put(Namespaced(key), value);
}

Result<Bytes> PrefixKvStore::Get(const std::string& key) const {
  return backend_->Get(Namespaced(key));
}

Status PrefixKvStore::Delete(const std::string& key) {
  return backend_->Delete(Namespaced(key));
}

bool PrefixKvStore::Contains(const std::string& key) const {
  return backend_->Contains(Namespaced(key));
}

size_t PrefixKvStore::Size() const { return backend_->Size(); }

size_t PrefixKvStore::ValueBytes() const { return backend_->ValueBytes(); }

Status PrefixKvStore::Sync() { return backend_->Sync(); }

Status PrefixKvStore::Scan(
    const std::function<void(const std::string&, BytesView)>& fn) const {
  return backend_->Scan([&](const std::string& key, BytesView value) {
    if (key.size() < prefix_.size()) return;
    if (key.compare(0, prefix_.size(), prefix_) != 0) return;
    fn(key.substr(prefix_.size()), value);
  });
}

}  // namespace tc::store
