#include "store/prefix_kv.hpp"

namespace tc::store {

PrefixKvStore::PrefixKvStore(std::shared_ptr<KvStore> backend,
                             std::string prefix)
    : backend_(std::move(backend)), prefix_(std::move(prefix)) {}

Status PrefixKvStore::Put(const std::string& key, BytesView value) {
  return backend_->Put(Namespaced(key), value);
}

Result<Bytes> PrefixKvStore::Get(const std::string& key) const {
  return backend_->Get(Namespaced(key));
}

Status PrefixKvStore::Delete(const std::string& key) {
  return backend_->Delete(Namespaced(key));
}

bool PrefixKvStore::Contains(const std::string& key) const {
  return backend_->Contains(Namespaced(key));
}

size_t PrefixKvStore::Size() const { return backend_->Size(); }

size_t PrefixKvStore::ValueBytes() const { return backend_->ValueBytes(); }

Status PrefixKvStore::Sync() { return backend_->Sync(); }

}  // namespace tc::store
