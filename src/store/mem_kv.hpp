// Sharded in-memory KV store: the default storage engine (stands in for the
// paper's Cassandra deployment; see DESIGN.md substitution #1).
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "common/thread_annotations.hpp"
#include "store/kv_store.hpp"

namespace tc::store {

/// Hash-sharded unordered_map store. Shard count fixed at construction;
/// each shard has its own mutex so concurrent streams don't contend.
class MemKvStore final : public KvStore {
 public:
  explicit MemKvStore(size_t num_shards = 16);

  Status Put(const std::string& key, BytesView value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  size_t Size() const override;
  size_t ValueBytes() const override;
  Status Scan(const std::function<void(const std::string&, BytesView)>& fn)
      const override;

 private:
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Bytes> map GUARDED_BY(mu);
    size_t value_bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key) const;

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace tc::store
