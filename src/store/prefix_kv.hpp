// Prefix-namespaced view over a shared KvStore: every key is transparently
// prefixed, so N views over one backend behave like N disjoint stores. This
// is how engine shards split a single shared backend (the paper's one
// Cassandra cluster serving many stateless TimeCrypt nodes, §3.2) without
// any cross-shard key collisions.
#pragma once

#include <memory>
#include <string>

#include "store/kv_store.hpp"

namespace tc::store {

/// View store. Thread-safety and durability are whatever the backend
/// provides; the view itself adds no locking.
class PrefixKvStore final : public KvStore {
 public:
  PrefixKvStore(std::shared_ptr<KvStore> backend, std::string prefix);

  Status Put(const std::string& key, BytesView value) override;
  Result<Bytes> Get(const std::string& key) const override;
  Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  /// Size/ValueBytes delegate to the backend: they report the whole shared
  /// store, not this view's slice (per-view accounting would cost a lookup
  /// per Put; shard introspection uses the engine's index stats instead).
  size_t Size() const override;
  size_t ValueBytes() const override;
  TC_BLOCKING Status Sync() override;
  /// Visits only this view's slice: backend keys carrying the prefix, with
  /// the prefix stripped — so a scan of a view round-trips through Put
  /// unchanged, and sibling views' keys never leak in.
  Status Scan(const std::function<void(const std::string&, BytesView)>& fn)
      const override;
  /// Whole-backend compaction pressure, like Size/ValueBytes.
  CompactionStats Compaction() const override {
    return backend_->Compaction();
  }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string Namespaced(const std::string& key) const {
    return prefix_ + key;
  }

  std::shared_ptr<KvStore> backend_;
  std::string prefix_;
};

}  // namespace tc::store
