// Secret-hygiene primitives: the TC_SECRET annotation consumed by
// tools/analyze/tc_analyze.py, a zeroize-on-free allocator, and the
// SecretBuffer RAII type for variable-length key material.
//
// TC_SECRET marks a declaration (field, parameter, variable) as key
// material. Under clang it expands to [[clang::annotate("tc_secret")]],
// which tc_analyze reads out of the AST to enforce:
//   A1 secret-leak     — annotated values never flow into TC_LOG streams,
//                        trace::RecordEvent details, metric names/labels,
//                        or Status message construction;
//   A2 zeroize         — a type with an annotated member SecureZeros it in
//                        its destructor or holds it in a SecretBuffer;
//   A3 constant-time   — ==/!=/memcmp on annotated operands routes through
//                        ConstantTimeEqual.
// Under GCC (and pre-annotate clang) the macro expands to nothing, exactly
// like the thread-safety macros in thread_annotations.hpp: the default
// local build is unaffected and the analysis runs in the clang CI job.
//
// Fixed-size key material (crypto::Key128, AES round-key schedules) stays
// in inline arrays scrubbed by their owner's destructor; SecretBuffer is
// for the variable-length secrets (X25519/Ed25519 raw keys) that would
// otherwise sit in a heap-backed Bytes the allocator frees without
// scrubbing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

#if defined(__clang__) && defined(__has_attribute)
#define TC_SECRET_HAS(x) __has_attribute(x)
#else
#define TC_SECRET_HAS(x) 0
#endif

#if TC_SECRET_HAS(annotate)
#define TC_SECRET [[clang::annotate("tc_secret")]]
#else
#define TC_SECRET  // no-op outside clang
#endif

namespace tc {

/// Allocator adaptor that SecureZeros every block before handing it back to
/// the upstream allocator — a container of secrets scrubs its storage on
/// free *and* on reallocation (vector growth frees the old block through
/// here too). The Upstream parameter exists for tests: an arena upstream
/// whose memory outlives deallocate() lets a test legally inspect the
/// scrubbed pattern.
template <typename T, typename Upstream = std::allocator<T>>
class ZeroizingAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  template <typename U>
  struct rebind {
    using other = ZeroizingAllocator<
        U, typename std::allocator_traits<Upstream>::template rebind_alloc<U>>;
  };

  ZeroizingAllocator() = default;
  explicit ZeroizingAllocator(Upstream upstream)
      : upstream_(std::move(upstream)) {}

  template <typename U, typename V>
  explicit ZeroizingAllocator(const ZeroizingAllocator<U, V>& other)
      : upstream_(typename std::allocator_traits<
                  V>::template rebind_alloc<T>(other.upstream())) {}

  T* allocate(size_t n) {
    return std::allocator_traits<Upstream>::allocate(upstream_, n);
  }

  void deallocate(T* p, size_t n) {
    SecureZero(MutableBytesView(reinterpret_cast<uint8_t*>(p), n * sizeof(T)));
    std::allocator_traits<Upstream>::deallocate(upstream_, p, n);
  }

  const Upstream& upstream() const { return upstream_; }

  friend bool operator==(const ZeroizingAllocator& a,
                         const ZeroizingAllocator& b) {
    return a.upstream_ == b.upstream_;
  }

 private:
  Upstream upstream_;
};

/// Bytes whose backing store is scrubbed whenever it is released.
using SecretBytes = std::vector<uint8_t, ZeroizingAllocator<uint8_t>>;

/// RAII buffer for variable-length key material. Behaves like a small
/// Bytes (resize/data/size, implicit BytesView) but its storage is
/// scrubbed on destruction, on reallocation, and on move-assignment over
/// an existing value; equality is constant-time; streaming it prints a
/// redaction, never the contents.
class SecretBuffer {
 public:
  SecretBuffer() = default;
  explicit SecretBuffer(size_t n) : data_(n, 0) {}
  explicit SecretBuffer(BytesView v) : data_(v.begin(), v.end()) {}

  /// Adopting a plain Bytes copies into scrubbed storage, then SecureZeros
  /// the source — the allocators differ, so the heap block cannot simply be
  /// stolen, and leaving a key copy behind would defeat the point.
  explicit SecretBuffer(Bytes&& b) { Adopt(std::move(b)); }
  SecretBuffer& operator=(Bytes&& b) {
    Adopt(std::move(b));
    return *this;
  }

  SecretBuffer(const SecretBuffer&) = default;
  SecretBuffer& operator=(const SecretBuffer&) = default;
  SecretBuffer(SecretBuffer&&) noexcept = default;
  SecretBuffer& operator=(SecretBuffer&&) noexcept = default;

  uint8_t* data() { return data_.data(); }
  const uint8_t* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void resize(size_t n) { data_.resize(n, 0); }

  /// Scrub and drop the contents (the allocator re-scrubs on free).
  void Clear() {
    SecureZero(MutableBytesView(data_.data(), data_.size()));
    data_.clear();
  }

  BytesView view() const { return BytesView(data_.data(), data_.size()); }
  MutableBytesView mutable_view() {
    return MutableBytesView(data_.data(), data_.size());
  }
  operator BytesView() const { return view(); }  // NOLINT(google-explicit-constructor)

  /// Constant-time equality — comparing key material with an early-exit
  /// memcmp would leak matching-prefix length through timing.
  friend bool operator==(const SecretBuffer& a, const SecretBuffer& b) {
    return ConstantTimeEqual(a.view(), b.view());
  }
  friend bool operator!=(const SecretBuffer& a, const SecretBuffer& b) {
    return !(a == b);
  }

  /// Redacted: a SecretBuffer reaching a log line, a status message, or a
  /// test-failure dump prints its length, never its bytes.
  friend std::ostream& operator<<(std::ostream& os, const SecretBuffer& b) {
    return os << "<secret " << b.size() << " bytes>";
  }

 private:
  void Adopt(Bytes&& b) {
    data_.assign(b.begin(), b.end());
    SecureZero(MutableBytesView(b.data(), b.size()));
    b.clear();
  }

  TC_SECRET SecretBytes data_;
};

}  // namespace tc
