// Minimal leveled logger. Off by default above WARN so benchmarks stay quiet;
// tests can raise verbosity via TC_LOG_LEVEL env or SetLogLevel().
#pragma once

#include <sstream>
#include <string_view>

namespace tc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogLine(LogLevel level, std::string_view file, int line,
             std::string_view msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace tc

#define TC_LOG(level)                                                   \
  if (::tc::LogLevel::level < ::tc::GetLogLevel()) {                    \
  } else                                                                \
    ::tc::internal::LogMessage(::tc::LogLevel::level, __FILE__, __LINE__)

#define TC_LOG_DEBUG TC_LOG(kDebug)
#define TC_LOG_INFO TC_LOG(kInfo)
#define TC_LOG_WARN TC_LOG(kWarn)
#define TC_LOG_ERROR TC_LOG(kError)
