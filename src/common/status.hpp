// Status / Result<T>: error handling as values for all fallible library paths.
//
// TimeCrypt is a networked storage system; failures (bad input, missing
// streams, crypto failures, transport errors) are expected outcomes, not
// exceptional programmer errors, so the public API returns Status/Result
// rather than throwing. Contract violations still assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kDataLoss,
  kUnimplemented,
};

/// Human-readable name of a status code (e.g. "NOT_FOUND").
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on success (no allocation).
/// [[nodiscard]] (here and on Result) makes the compiler reject plainly
/// ignored returns; tc_analyze rule "status-discard" (B3) catches the
/// shapes the compiler can't — discards through references, comma
/// operators, and unjustified casts to void.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: stream 42 does not exist".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status NotFound(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status AlreadyExists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status PermissionDenied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status OutOfRange(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status FailedPrecondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status Unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status Internal(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status DataLoss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status Unimplemented(std::string msg) {
  return {StatusCode::kUnimplemented, std::move(msg)};
}

/// Either a value of type T or an error Status. Never both. (This is the
/// repo's StatusOr: value-or-error with the same discard discipline.)
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(implicit)
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// The error status; OK if a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace tc

/// Propagate a non-OK Status from an expression, abseil-style.
#define TC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::tc::Status tc_status_ = (expr);             \
    if (!tc_status_.ok()) return tc_status_;      \
  } while (false)

/// Evaluate a Result expression; on error return its Status, else bind value.
#define TC_ASSIGN_OR_RETURN(lhs, expr)            \
  TC_ASSIGN_OR_RETURN_IMPL_(                      \
      TC_STATUS_CONCAT_(tc_result_, __LINE__), lhs, expr)

#define TC_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                              \
  if (!var.ok()) return var.status();             \
  lhs = std::move(var).value()

#define TC_STATUS_CONCAT_INNER_(a, b) a##b
#define TC_STATUS_CONCAT_(a, b) TC_STATUS_CONCAT_INNER_(a, b)
