#include "common/bytes.hpp"

namespace tc {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void SecureZero(MutableBytesView data) {
  if (data.empty()) return;
  // memset + a barrier that declares the memory read: the compiler cannot
  // prove the stores dead, so it cannot elide them, and the zeroing stays
  // vectorized — the previous volatile byte loop cost ~1 ns/byte, which
  // mattered once every AES key schedule (176 bytes) started scrubbing
  // itself on the PRG hot path.
  std::memset(data.data(), 0, data.size());
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(data.data()) : "memory");
#else
  volatile uint8_t* p = data.data();
  p[0] = p[0];
#endif
}

}  // namespace tc
