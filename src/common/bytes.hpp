// Byte-buffer aliases and small helpers shared across modules.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace tc {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;
using MutableBytesView = std::span<uint8_t>;

/// Lowercase hex encoding of a byte span.
std::string ToHex(BytesView data);

/// Decode lowercase/uppercase hex. Fails on odd length or non-hex chars.
Result<Bytes> FromHex(std::string_view hex);

/// Constant-time equality for secrets (avoids early-exit timing leaks).
bool ConstantTimeEqual(BytesView a, BytesView b);

/// Best-effort scrubbing of key material. A compiler barrier after the
/// memset prevents the stores from being elided as dead writes.
void SecureZero(MutableBytesView data);

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Append `src` to `dst`.
inline void Append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace tc
