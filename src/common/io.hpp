// Endian-safe binary writer/reader: the single serialization primitive used
// by chunk serialization, index node encoding, and the wire codec.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/varint.hpp"

namespace tc {

/// Appends little-endian fixed-width ints, varints, and length-prefixed blobs
/// to an owned buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutVar(uint64_t v) { PutVarint(buf_, v); }
  void PutVarSigned(int64_t v) { PutSignedVarint(buf_, v); }

  /// Varint length prefix + raw bytes.
  void PutBytes(BytesView b) {
    PutVar(b.size());
    Append(buf_, b);
  }

  void PutString(std::string_view s) {
    PutVar(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Raw bytes, no length prefix (caller manages framing).
  void PutRaw(BytesView b) { Append(buf_, b); }

  const Bytes& data() const { return buf_; }
  Bytes Take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads back what BinaryWriter wrote. All getters fail (return error) on
/// truncated input rather than reading out of bounds.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return data_[pos_++];
  }

  Result<uint16_t> GetU16() {
    if (pos_ + 2 > data_.size()) return Truncated();
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  Result<uint32_t> GetU32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  Result<int64_t> GetI64() {
    TC_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return static_cast<int64_t>(v);
  }

  Result<double> GetDouble() {
    TC_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<uint64_t> GetVar() {
    auto v = GetVarint(data_, pos_);
    if (!v) return Truncated();
    return *v;
  }

  Result<int64_t> GetVarSigned() {
    auto v = GetSignedVarint(data_, pos_);
    if (!v) return Truncated();
    return *v;
  }

  Result<Bytes> GetBytes() {
    TC_ASSIGN_OR_RETURN(uint64_t n, GetVar());
    // Compare against the remainder (never pos_ + n: a hostile 64-bit
    // length would overflow the addition and slip past the bounds check).
    if (n > remaining()) return Truncated();
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  Result<std::string> GetString() {
    TC_ASSIGN_OR_RETURN(Bytes b, GetBytes());
    return std::string(b.begin(), b.end());
  }

  /// View of the next n bytes without copying; advances the cursor.
  Result<BytesView> GetRaw(size_t n) {
    if (n > remaining()) return Truncated();  // overflow-safe bound check
    BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  static Status Truncated() { return DataLoss("truncated input"); }

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace tc
