#include "common/time.hpp"

namespace tc {

std::string TimeRange::ToString() const {
  return "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
}

}  // namespace tc
