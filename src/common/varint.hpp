// LEB128 variable-length integers and zigzag mapping, used by the chunk
// compressor and the wire codec.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace tc {

/// Append an unsigned LEB128 varint to `out` (1..10 bytes for 64-bit).
void PutVarint(Bytes& out, uint64_t value);

/// Decode a varint starting at out[pos]; advances pos. nullopt on truncation
/// or overlong (>10 byte) encodings.
std::optional<uint64_t> GetVarint(BytesView in, size_t& pos);

/// Zigzag: maps signed to unsigned so small-magnitude values stay short.
constexpr uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutSignedVarint(Bytes& out, int64_t value) {
  PutVarint(out, ZigzagEncode(value));
}

inline std::optional<int64_t> GetSignedVarint(BytesView in, size_t& pos) {
  auto u = GetVarint(in, pos);
  if (!u) return std::nullopt;
  return ZigzagDecode(*u);
}

}  // namespace tc
