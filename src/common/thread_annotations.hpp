// Compile-time lock-discipline enforcement: Clang Thread Safety Analysis
// attributes plus capability-annotated wrappers over the std primitives.
//
// Every mutex in src/ is a tc::Mutex or tc::SharedMutex (tc_lint enforces
// this), every piece of guarded state carries GUARDED_BY, and every
// requires-lock-held helper carries REQUIRES. Under clang with
// -Wthread-safety (the TC_THREAD_SAFETY=ON CMake build, run in CI) an
// unlocked read of guarded state, a lock held across a forbidden boundary,
// or a missing REQUIRES is a hard compile error. Under GCC every attribute
// expands to nothing and the wrappers are zero-cost forwarding shims, so
// the default local build is unaffected.
//
// Annotation conventions for new code (see README "Static analysis"):
//  - Name the guarded state:       Bytes buf_ GUARDED_BY(mu_);
//  - Name the contract, not the    void CompactLocked() REQUIRES(mu_);
//    call site.
//  - Scoped locking via MutexLock / ReaderMutexLock / WriterMutexLock;
//    explicit mu_.lock()/mu_.unlock() only for hand-over-hand patterns the
//    scoped forms cannot express (the analysis checks both).
//  - Condition-variable waits use tc::CondVar with an explicit while-loop
//    around the predicate. Never cv.wait(lock, lambda): the analysis is
//    intraprocedural, so a predicate lambda reading guarded state is its
//    own unanalyzable function.
//  - TS_NO_ANALYSIS currently has zero uses in src/ (even CondVar's
//    release/reacquire hides inside std::condition_variable_any, not
//    behind an escape). A new use needs a comment explaining why the
//    analysis cannot see the invariant. Note that tc_analyze's
//    concurrency rules (B1/B2, see tools/analyze/tc_analyze.py) do NOT
//    honor TS_NO_ANALYSIS — their only escape hatch is a justified
//    `// tc_analyze:allow(...)` comment.
//  - Mark functions that can park the calling thread (socket I/O, fsync,
//    condvar/future waits, sleeps) with TC_BLOCKING on their declaration.
//    tc_analyze seeds its may-block summaries from it and rejects blocking
//    calls made while a tc::Mutex/SharedMutex is held (B1) or from inside
//    an Executor/AsyncCall callback (B2).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Attribute macros (clang's official thread-safety vocabulary, gated so GCC
// and pre-attribute clang compile them away).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define TC_TSA_HAS(x) __has_attribute(x)
#else
#define TC_TSA_HAS(x) 0
#endif

#if TC_TSA_HAS(guarded_by)
#define TC_TSA(x) __attribute__((x))
#else
#define TC_TSA(x)  // no-op outside clang
#endif

#define CAPABILITY(x) TC_TSA(capability(x))
#define SCOPED_CAPABILITY TC_TSA(scoped_lockable)
#define GUARDED_BY(x) TC_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) TC_TSA(pt_guarded_by(x))
#define REQUIRES(...) TC_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) TC_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) TC_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) TC_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) TC_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) TC_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) TC_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) TC_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  TC_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) TC_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TC_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) TC_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) TC_TSA(lock_returned(x))
#define TS_NO_ANALYSIS TC_TSA(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Blocking-call annotation (consumed by tools/analyze/tc_analyze.py, not by
// the compiler). Place TC_BLOCKING at the very start of a declaration in a
// header (tc_lint R10 enforces declaration placement):
//
//   TC_BLOCKING Status Sync() override;
//   TC_BLOCKING static Result<std::unique_ptr<TcpClient>> Connect(...);
//
// Like TC_SECRET, it rides [[clang::annotate]] so it survives into the AST
// that tc_analyze walks, and expands to nothing on GCC.
// ---------------------------------------------------------------------------

#if TC_TSA_HAS(annotate)
#define TC_BLOCKING [[clang::annotate("tc_blocking")]]
#else
#define TC_BLOCKING  // no-op outside clang
#endif

namespace tc {

// ---------------------------------------------------------------------------
// Capability-annotated mutexes. BasicLockable, so std::condition_variable_any
// can wait on them directly; std::lock_guard et al. must NOT be used on them
// (libstdc++'s RAII types carry no annotations — the analysis would see the
// acquire but never the release). Use the scoped lockers below.
// ---------------------------------------------------------------------------

/// Exclusive mutex (annotated std::mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tell the analysis the lock is held without acquiring it — for code
  /// reached only while a caller outside the analysis horizon (e.g. a std::
  /// callback signature that cannot carry REQUIRES) holds the lock.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

/// Reader/writer mutex (annotated std::shared_mutex).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// ---------------------------------------------------------------------------
// Scoped lockers (annotated lock_guard equivalents).
// ---------------------------------------------------------------------------

/// RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// ---------------------------------------------------------------------------
// Condition variable over tc::Mutex.
// ---------------------------------------------------------------------------

/// Condition variable whose waits are lock-discipline-checked: Wait/WaitFor
/// REQUIRES the mutex, and the analysis sees the lock as continuously held
/// across the wait (the internal release/reacquire happens inside
/// std::condition_variable_any, beyond the intraprocedural horizon — this
/// is the documented condvar idiom; callers keep their guarded accesses in
/// an explicit `while (!predicate()) cv.Wait(mu);` loop).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically release `mu`, wait, reacquire. Spurious wakeups possible —
  /// always wrap in a predicate while-loop. Blocking, but exempt from
  /// tc_analyze B1 (the wait releases the mutex by design); it still counts
  /// for B2 — an executor task must never park its worker on a condvar.
  TC_BLOCKING void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns std::cv_status::timeout when the duration elapsed
  /// without a notification.
  template <class Rep, class Period>
  TC_BLOCKING std::cv_status WaitFor(
      Mutex& mu, const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    return cv_.wait_for(mu, dur);
  }

  /// Deadline wait, for predicate loops that must not extend their total
  /// timeout on spurious wakeups.
  template <class Clock, class Duration>
  TC_BLOCKING std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace tc
