// Process-wide metrics registry and request tracing.
//
// The record path is lock-free: Counter/Gauge/LatencyHistogram are plain
// relaxed atomics, and call sites hold a reference obtained once (function-
// local static) so steady state never touches the registry lock. The
// registry mutex only guards registration and snapshot iteration.
//
// LatencyHistogram buckets are powers of two over microseconds: bucket 0
// holds the value 0, bucket i (i >= 1) holds [2^(i-1), 2^i). Quantiles come
// from the cumulative bucket walk, reported as the bucket's upper bound
// clamped to the observed max — cheap, bounded error, and monotone
// (p50 <= p95 <= p99 <= max always holds in one snapshot).
//
// `TraceSpan` times one logical operation, splits it into named stages, and
// emits one structured slow-op WARN line when the total crosses the
// configured threshold (`tcserver --slow-op-ms`), carrying the per-request
// trace id the wire layer stamped on the handling thread.
//
// Compile-time kill switch: configure with -DTC_METRICS=OFF and every
// recording call compiles to nothing (`kEnabled` is false); the registry
// then reports no samples. Used by CI to bound instrumentation overhead.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace tc::metrics {

#if defined(TC_METRICS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic event count. Prometheus kind: counter (name them *_total).
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depths, connection counts, lag).
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
  }
  void Inc(int64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
  }
  void Dec(int64_t n = 1) {
    if constexpr (kEnabled) v_.fetch_sub(n, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

struct HistogramSnapshot {
  static constexpr size_t kNumBuckets = 32;
  uint64_t count = 0;    // sum of the copied buckets (self-consistent)
  uint64_t sum = 0;      // sum of recorded values (microseconds for timings)
  uint64_t max = 0;
  uint64_t p50 = 0, p95 = 0, p99 = 0;
  std::array<uint64_t, kNumBuckets> buckets{};  // per-bucket counts
};

/// Power-of-two-bucket histogram; values are microseconds for latency
/// metrics but any uint64 works (batch sizes, queue depths).
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  void Record(uint64_t value) {
    if constexpr (!kEnabled) return;
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (seen < value &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket for a value: 0 -> 0, else bit width clamped to the last bucket.
  static size_t BucketIndex(uint64_t value) {
    size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (the last bucket is a catch-all).
  static uint64_t BucketUpperBound(size_t i) {
    if (i == 0) return 0;
    if (i >= kNumBuckets - 1) return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
  }

  /// Relaxed-copy snapshot: safe against concurrent Record; `count` is
  /// derived from the copied buckets so the quantiles are self-consistent
  /// (sum/max may trail the buckets by in-flight records).
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One collected metric, for the wire message and the text renderers.
struct MetricSample {
  enum class Kind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
  Kind kind = Kind::kCounter;
  std::string name;    // snake_case family, e.g. "tc_net_rx_bytes_total"
  std::string labels;  // 'k="v",k2="v2"' without braces; may be empty
  int64_t value = 0;   // counter/gauge value
  HistogramSnapshot hist;  // histogram only
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Get-or-create; the returned reference is valid for the process
  /// lifetime. Call once per site (function-local static) — registration
  /// takes the registry lock.
  Counter& GetCounter(std::string_view name, std::string_view labels = "");
  Gauge& GetGauge(std::string_view name, std::string_view labels = "");
  LatencyHistogram& GetHistogram(std::string_view name,
                                 std::string_view labels = "");

  /// Every registered metric, sorted by (name, labels).
  std::vector<MetricSample> Collect() const EXCLUDES(mu_);

  /// Prometheus text exposition (version 0.0.4). Histogram families whose
  /// name ends in "_seconds" are recorded in microseconds and rendered in
  /// seconds; quantiles ride along as <family>_{p50,p95,p99,max} gauges.
  std::string RenderPrometheus() const;

  /// Slow-op threshold for TraceSpan, in microseconds; 0 disables.
  void SetSlowOpMicros(uint64_t us) {
    slow_op_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t slow_op_micros() const {
    return slow_op_us_.load(std::memory_order_relaxed);
  }

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Counter>>
      counters_ GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Gauge>>
      gauges_ GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<LatencyHistogram>>
      histograms_ GUARDED_BY(mu_);
  std::atomic<uint64_t> slow_op_us_{0};
};

// Convenience: Instance() forwarders, for one-line function-local statics.
inline Counter& GetCounter(std::string_view name,
                           std::string_view labels = "") {
  return MetricsRegistry::Instance().GetCounter(name, labels);
}
inline Gauge& GetGauge(std::string_view name, std::string_view labels = "") {
  return MetricsRegistry::Instance().GetGauge(name, labels);
}
inline LatencyHistogram& GetHistogram(std::string_view name,
                                      std::string_view labels = "") {
  return MetricsRegistry::Instance().GetHistogram(name, labels);
}

// ---------------------------------------------------------------------------
// Request tracing.
// ---------------------------------------------------------------------------

/// Trace id of the request the current thread is handling (0 = none). The
/// wire layer stamps it before dispatching into the handler chain; TraceSpan
/// picks it up for slow-op lines.
uint64_t CurrentTraceId();
void SetCurrentTraceId(uint64_t id);

/// Distributed trace context: the origin trace id plus the span the current
/// work descends from. Carried in every frame header, stamped on the
/// handling thread by the wire layer, and re-stamped across executor hops
/// (the thread-locals do not follow a Submit).
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

/// The raw thread-local context (trace id + inherited parent span id).
TraceContext CurrentTraceContext();
void SetCurrentTraceContext(TraceContext ctx);

/// Context to stamp on an outgoing frame or executor hop: the current trace
/// id, with the innermost live span of this thread as the parent (falling
/// back to the inherited parent when no span is open) — so a downstream
/// span links under the span that issued the call.
TraceContext OutgoingTraceContext();

/// Times one scope into a histogram (for sites that need no stage split).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& hist) : hist_(hist) {
    if constexpr (kEnabled) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if constexpr (kEnabled) {
      hist_.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Times one logical operation with named stage splits. The span registers
/// itself on the thread (spans nest as a stack) so deep call sites can mark
/// stage boundaries via TraceSpan::StageMark without plumbing the span
/// through every signature. On destruction the total is recorded into
/// `total_hist` and, when it crosses the registry's slow-op threshold, one
/// structured WARN line is logged:
///   slow-op op=insert_chunk trace=00000002000000a1 total_us=52181
///   stages=decode:112,store:9441,index:42510
class TraceSpan {
 public:
  /// Shard value for spans recorded outside any shard (mirrors
  /// trace::kNoShard; metrics.hpp stays below trace.hpp in the layering).
  static constexpr uint32_t kNoShard = 0xffffffffu;

  explicit TraceSpan(const char* op, LatencyHistogram* total_hist = nullptr,
                     uint32_t shard = kNoShard, uint8_t msg_type = 0);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Close the stage that ran since the span start (or the previous Stage
  /// call), recording its duration into `hist` and the slow-op breakdown.
  void Stage(const char* name, LatencyHistogram* hist = nullptr);

  /// Stage boundary on the innermost live span of this thread; no-op when
  /// no span is open (e.g. an engine driven directly by a test).
  static void StageMark(const char* name, LatencyHistogram* hist = nullptr);

  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }

 private:
  static constexpr size_t kMaxStages = 8;
  struct StageRec {
    const char* name;
    uint64_t us;
  };

  const char* op_;
  LatencyHistogram* total_hist_;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint32_t shard_ = kNoShard;
  uint8_t msg_type_ = 0;
  int64_t start_wall_us_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point stage_start_;
  std::array<StageRec, kMaxStages> stages_{};
  size_t num_stages_ = 0;
  TraceSpan* parent_ = nullptr;  // thread-local span stack
};

}  // namespace tc::metrics
