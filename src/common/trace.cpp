#include "common/trace.hpp"

#include <chrono>

namespace tc::trace {

namespace {

std::atomic<uint32_t> g_sample_pct{100};

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// splitmix64: a cheap avalanching hash so the sampling decision is
/// uniform over the low bits of the (structured) trace id.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SpanRing::Push(const SpanRecord& r) {
  uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (kCapacity - 1)];
  // Odd version marks the write window; the closing increment releases the
  // field stores to any snapshot that observes the even value. Two writers
  // wrapping onto one slot (kCapacity tickets apart) each add 2, so the
  // version always settles even — a mixed slot is possible but benign, and
  // both spans count as dropped coverage anyway.
  s.ver.fetch_add(1, std::memory_order_acq_rel);
  s.trace_id.store(r.trace_id, std::memory_order_relaxed);
  s.span_id.store(r.span_id, std::memory_order_relaxed);
  s.parent_span_id.store(r.parent_span_id, std::memory_order_relaxed);
  s.op.store(r.op, std::memory_order_relaxed);
  s.meta.store((static_cast<uint64_t>(r.shard) << 32) |
                   (static_cast<uint64_t>(r.msg_type) << 8) |
                   (r.slow ? 1u : 0u),
               std::memory_order_relaxed);
  s.start_us.store(r.start_us, std::memory_order_relaxed);
  s.duration_us.store(r.duration_us, std::memory_order_relaxed);
  s.ver.fetch_add(1, std::memory_order_release);
  if (ticket >= kCapacity) {
    static metrics::Counter& dropped =
        metrics::GetCounter("tc_trace_spans_dropped_total");
    dropped.Inc();
  }
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  std::vector<SpanRecord> out;
  uint64_t head = head_.load(std::memory_order_acquire);
  size_t filled = head < kCapacity ? static_cast<size_t>(head) : kCapacity;
  out.reserve(filled);
  for (size_t i = 0; i < filled; ++i) {
    const Slot& s = slots_[i];
    uint64_t v1 = s.ver.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // never written or mid-write
    SpanRecord r;
    r.trace_id = s.trace_id.load(std::memory_order_relaxed);
    r.span_id = s.span_id.load(std::memory_order_relaxed);
    r.parent_span_id = s.parent_span_id.load(std::memory_order_relaxed);
    const char* op = s.op.load(std::memory_order_relaxed);
    r.op = op != nullptr ? op : "";
    uint64_t meta = s.meta.load(std::memory_order_relaxed);
    r.shard = static_cast<uint32_t>(meta >> 32);
    r.msg_type = static_cast<uint8_t>((meta >> 8) & 0xff);
    r.slow = (meta & 1) != 0;
    r.start_us = s.start_us.load(std::memory_order_relaxed);
    r.duration_us = s.duration_us.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.ver.load(std::memory_order_relaxed) != v1) continue;  // torn
    out.push_back(r);
  }
  return out;
}

SpanRing& Ring() {
  static SpanRing* ring = new SpanRing();  // never torn down
  return *ring;
}

void RecordSpan(const SpanRecord& r) { Ring().Push(r); }

void SetSamplePercent(uint32_t pct) {
  g_sample_pct.store(pct > 100 ? 100 : pct, std::memory_order_relaxed);
}

uint32_t SamplePercent() {
  return g_sample_pct.load(std::memory_order_relaxed);
}

bool Sampled(uint64_t trace_id) {
  uint32_t pct = g_sample_pct.load(std::memory_order_relaxed);
  if (pct >= 100) return true;
  if (pct == 0) return false;
  return Mix(trace_id) % 100 < pct;
}

EventJournal& EventJournal::Instance() {
  static EventJournal* journal = new EventJournal();  // never torn down
  return *journal;
}

void EventJournal::Record(const char* kind, uint32_t shard,
                          std::string detail) {
  static metrics::Counter& recorded =
      metrics::GetCounter("tc_events_recorded_total");
  static metrics::Counter& dropped_total =
      metrics::GetCounter("tc_events_dropped_total");
  recorded.Inc();
  MutexLock lock(mu_);
  Event e;
  e.seq = next_seq_++;
  e.wall_ms = WallMs();
  e.kind = kind;
  e.shard = shard;
  e.detail = std::move(detail);
  if (log_ != nullptr) {
    std::fprintf(log_,
                 "{\"seq\":%llu,\"wall_ms\":%lld,\"kind\":\"%s\","
                 "\"shard\":%u,\"detail\":\"%s\"}\n",
                 static_cast<unsigned long long>(e.seq),
                 static_cast<long long>(e.wall_ms), e.kind.c_str(), e.shard,
                 EscapeJson(e.detail).c_str());
    std::fflush(log_);
  }
  events_.push_back(std::move(e));
  while (events_.size() > kCapacity) {
    events_.pop_front();
    ++dropped_;
    dropped_total.Inc();
  }
}

std::vector<Event> EventJournal::Snapshot(uint64_t min_seq) const {
  MutexLock lock(mu_);
  std::vector<Event> out;
  out.reserve(events_.size());
  for (const Event& e : events_) {
    if (e.seq >= min_seq) out.push_back(e);
  }
  return out;
}

uint64_t EventJournal::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

Status EventJournal::OpenLogFile(const std::string& path) {
  MutexLock lock(mu_);
  if (log_ != nullptr) return FailedPrecondition("event log already open");
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return Unavailable("cannot open event log " + path);
  log_ = f;
  return Status::Ok();
}

void EventJournal::CloseLogFile() {
  MutexLock lock(mu_);
  if (log_ != nullptr) {
    std::fclose(log_);
    log_ = nullptr;
  }
}

}  // namespace tc::trace
