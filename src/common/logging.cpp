#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace tc {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("TC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{InitialLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

const char* Basename(std::string_view path) {
  size_t slash = path.rfind('/');
  return path.data() + (slash == std::string_view::npos ? 0 : slash + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void LogLine(LogLevel level, std::string_view file, int line,
             std::string_view msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s %s:%d] %.*s\n", LevelTag(level), Basename(file),
               line, static_cast<int>(msg.size()), msg.data());
}

}  // namespace internal

}  // namespace tc
