// Time types for stream data: millisecond timestamps, durations, half-open
// ranges, and the mapping between wall-clock ranges and chunk indices.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace tc {

/// Milliseconds since the stream-global epoch (Unix epoch by convention).
using Timestamp = int64_t;
/// Milliseconds.
using DurationMs = int64_t;

constexpr DurationMs kMillisecond = 1;
constexpr DurationMs kSecond = 1000;
constexpr DurationMs kMinute = 60 * kSecond;
constexpr DurationMs kHour = 60 * kMinute;
constexpr DurationMs kDay = 24 * kHour;
constexpr DurationMs kWeek = 7 * kDay;

/// Half-open time interval [start, end).
struct TimeRange {
  Timestamp start = 0;
  Timestamp end = 0;

  bool empty() const { return end <= start; }
  DurationMs length() const { return end - start; }
  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool Contains(const TimeRange& other) const {
    return other.start >= start && other.end <= end;
  }
  bool Overlaps(const TimeRange& other) const {
    return start < other.end && other.start < end;
  }

  friend bool operator==(const TimeRange&, const TimeRange&) = default;

  std::string ToString() const;
};

/// Maps wall-clock time to chunk indices for a stream that starts at `t0`
/// and chunks at fixed interval `delta` (the paper's Δ, §4.3). Chunk i covers
/// [t0 + i*delta, t0 + (i+1)*delta).
class ChunkClock {
 public:
  ChunkClock(Timestamp t0, DurationMs delta) : t0_(t0), delta_(delta) {}

  Timestamp t0() const { return t0_; }
  DurationMs delta() const { return delta_; }

  /// Index of the chunk containing `t`. Requires t >= t0.
  Result<uint64_t> IndexOf(Timestamp t) const {
    if (t < t0_) return OutOfRange("timestamp precedes stream start");
    return static_cast<uint64_t>((t - t0_) / delta_);
  }

  TimeRange RangeOfChunk(uint64_t index) const {
    Timestamp s = t0_ + static_cast<Timestamp>(index) * delta_;
    return {s, s + delta_};
  }

  /// Chunk index range [first, last) covering all chunks that overlap `r`,
  /// clipped to chunks fully before `now_chunks`.
  Result<std::pair<uint64_t, uint64_t>> IndexRange(const TimeRange& r) const {
    if (r.empty()) return InvalidArgument("empty time range");
    if (r.end <= t0_) return OutOfRange("range precedes stream start");
    Timestamp clamped_start = r.start < t0_ ? t0_ : r.start;
    uint64_t first = static_cast<uint64_t>((clamped_start - t0_) / delta_);
    uint64_t last = static_cast<uint64_t>((r.end - t0_ + delta_ - 1) / delta_);
    return std::make_pair(first, last);
  }

  /// True if `r` is aligned to whole chunks (starts and ends on boundaries).
  bool IsAligned(const TimeRange& r) const {
    return (r.start - t0_) % delta_ == 0 && (r.end - t0_) % delta_ == 0;
  }

 private:
  Timestamp t0_;
  DurationMs delta_;
};

}  // namespace tc
