#include "common/varint.hpp"

namespace tc {

void PutVarint(Bytes& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

std::optional<uint64_t> GetVarint(BytesView in, size_t& pos) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = pos;
  while (p < in.size() && shift < 64) {
    uint8_t byte = in[p++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos = p;
      return result;
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or overlong
}

}  // namespace tc
