#include "common/metrics.hpp"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/logging.hpp"
#include "common/trace.hpp"

namespace tc::metrics {

namespace {

thread_local uint64_t g_trace_id = 0;
thread_local uint64_t g_parent_span_id = 0;
thread_local TraceSpan* g_current_span = nullptr;

/// Process-unique span ids: a counter seeded from clock/pid/ASLR entropy so
/// two processes in one cluster allocate from disjoint ranges (span ids
/// must be unique within a trace tree, which crosses processes).
uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{[] {
    uint64_t x = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    x ^= static_cast<uint64_t>(getpid()) << 32;
    x ^= reinterpret_cast<uintptr_t>(&g_trace_id);
    // splitmix64 finalizer, then keep ids nonzero.
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x | 1;
  }()};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
  return us < 0 ? 0 : static_cast<uint64_t>(us);
}

/// Quantile from a cumulative bucket walk: upper bound of the first bucket
/// whose cumulative count reaches rank ceil(q * count), clamped to max.
uint64_t Quantile(const HistogramSnapshot& s, double q) {
  if (s.count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(s.count));
  if (rank < 1) rank = 1;
  if (rank > s.count) rank = s.count;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    cumulative += s.buckets[i];
    if (cumulative >= rank) {
      return std::min(LatencyHistogram::BucketUpperBound(i), s.max);
    }
  }
  return s.max;
}

template <typename Map, typename Metric>
Metric& GetOrCreate(Map& map, std::string_view name, std::string_view labels) {
  auto key = std::make_pair(std::string(name), std::string(labels));
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(std::move(key), std::make_unique<Metric>()).first;
  }
  return *it->second;
}

/// Append one exposition value: integers stay integral, else shortest float.
void AppendValue(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

void AppendSample(std::string& out, const std::string& name,
                  const std::string& labels, double value) {
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  AppendValue(out, value);
  out += '\n';
}

}  // namespace

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot s;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = Quantile(s, 0.50);
  s.p95 = Quantile(s, 0.95);
  s.p99 = Quantile(s, 0.99);
  return s;
}

namespace {

const char* SanitizerName() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return "address";
#elif __has_feature(thread_sanitizer)
  return "thread";
#else
  return "none";
#endif
#else
  return "none";
#endif
}

}  // namespace

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();  // never torn down
    if constexpr (kEnabled) {
      // Value is always 1; the labels carry the build identity so one
      // scrape answers "what is this binary" (version, metrics build,
      // sanitizer) without shell access to the host.
      std::string labels = "version=\"8\",metrics=\"on\",sanitizer=\"";
      labels += SanitizerName();
      labels += '"';
      r->GetGauge("tc_build_info", labels).Set(1);
    }
    return r;
  }();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view labels) {
  MutexLock lock(mu_);
  return GetOrCreate<decltype(counters_), Counter>(counters_, name, labels);
}

Gauge& MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view labels) {
  MutexLock lock(mu_);
  return GetOrCreate<decltype(gauges_), Gauge>(gauges_, name, labels);
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name,
                                                std::string_view labels) {
  MutexLock lock(mu_);
  return GetOrCreate<decltype(histograms_), LatencyHistogram>(histograms_,
                                                              name, labels);
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> samples;
  MutexLock lock(mu_);
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, counter] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = key.first;
    s.labels = key.second;
    s.value = static_cast<int64_t>(counter->value());
    samples.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = key.first;
    s.labels = key.second;
    s.value = gauge->value();
    samples.push_back(std::move(s));
  }
  for (const auto& [key, hist] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = key.first;
    s.labels = key.second;
    s.hist = hist->Snapshot();
    samples.push_back(std::move(s));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  return samples;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<MetricSample> samples = Collect();
  std::string out;
  out.reserve(4096);
  if constexpr (!kEnabled) {
    out += "# metrics disabled at compile time (TC_METRICS=OFF)\n";
    return out;
  }
  std::string last_family;
  for (const MetricSample& s : samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge: {
        if (s.name != last_family) {
          out += "# TYPE " + s.name + " ";
          out += s.kind == MetricSample::Kind::kCounter ? "counter" : "gauge";
          out += '\n';
          last_family = s.name;
        }
        AppendSample(out, s.name, s.labels, static_cast<double>(s.value));
        break;
      }
      case MetricSample::Kind::kHistogram: {
        // "_seconds" families are recorded in microseconds, exposed in
        // seconds (Prometheus base-unit convention); others are unit-less.
        bool seconds = s.name.size() > 8 &&
                       s.name.compare(s.name.size() - 8, 8, "_seconds") == 0;
        double scale = seconds ? 1e-6 : 1.0;
        if (s.name != last_family) {
          out += "# TYPE " + s.name + " histogram\n";
          last_family = s.name;
        }
        uint64_t cumulative = 0;
        for (size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
          cumulative += s.hist.buckets[i];
          if (s.hist.buckets[i] == 0 && i + 1 < HistogramSnapshot::kNumBuckets)
            continue;  // keep the exposition small: skip empty interior rows
          std::string le_labels = s.labels;
          if (!le_labels.empty()) le_labels += ',';
          uint64_t bound = LatencyHistogram::BucketUpperBound(i);
          if (i + 1 == HistogramSnapshot::kNumBuckets || bound == UINT64_MAX) {
            le_labels += "le=\"+Inf\"";
          } else {
            le_labels += "le=\"";
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.9g",
                          static_cast<double>(bound) * scale);
            le_labels += buf;
            le_labels += '"';
          }
          AppendSample(out, s.name + "_bucket", le_labels,
                       static_cast<double>(cumulative));
        }
        AppendSample(out, s.name + "_sum", s.labels,
                     static_cast<double>(s.hist.sum) * scale);
        AppendSample(out, s.name + "_count", s.labels,
                     static_cast<double>(s.hist.count));
        // Quantiles ride along as derived gauges (the acceptance surface:
        // per-message-type latency quantiles in one scrape).
        AppendSample(out, s.name + "_p50", s.labels,
                     static_cast<double>(s.hist.p50) * scale);
        AppendSample(out, s.name + "_p95", s.labels,
                     static_cast<double>(s.hist.p95) * scale);
        AppendSample(out, s.name + "_p99", s.labels,
                     static_cast<double>(s.hist.p99) * scale);
        AppendSample(out, s.name + "_max", s.labels,
                     static_cast<double>(s.hist.max) * scale);
        break;
      }
    }
  }
  return out;
}

uint64_t CurrentTraceId() { return g_trace_id; }
void SetCurrentTraceId(uint64_t id) { g_trace_id = id; }

TraceContext CurrentTraceContext() {
  return TraceContext{g_trace_id, g_parent_span_id};
}

void SetCurrentTraceContext(TraceContext ctx) {
  g_trace_id = ctx.trace_id;
  g_parent_span_id = ctx.parent_span_id;
}

TraceContext OutgoingTraceContext() {
  if (g_current_span != nullptr) {
    return TraceContext{g_trace_id, g_current_span->span_id()};
  }
  return TraceContext{g_trace_id, g_parent_span_id};
}

TraceSpan::TraceSpan(const char* op, LatencyHistogram* total_hist,
                     uint32_t shard, uint8_t msg_type)
    : op_(op), total_hist_(total_hist), shard_(shard), msg_type_(msg_type) {
  if constexpr (!kEnabled) return;
  trace_id_ = g_trace_id;
  span_id_ = NextSpanId();
  parent_ = g_current_span;
  parent_span_id_ =
      parent_ != nullptr ? parent_->span_id_ : g_parent_span_id;
  start_wall_us_ = WallUs();
  start_ = stage_start_ = std::chrono::steady_clock::now();
  g_current_span = this;
}

void TraceSpan::Stage(const char* name, LatencyHistogram* hist) {
  if constexpr (!kEnabled) return;
  auto now = std::chrono::steady_clock::now();
  uint64_t us = ElapsedUs(stage_start_, now);
  stage_start_ = now;
  if (hist != nullptr) hist->Record(us);
  if (num_stages_ < kMaxStages) stages_[num_stages_++] = {name, us};
}

TraceSpan::~TraceSpan() {
  if constexpr (!kEnabled) return;
  g_current_span = parent_;
  uint64_t total_us = ElapsedUs(start_, std::chrono::steady_clock::now());
  if (total_hist_ != nullptr) total_hist_->Record(total_us);
  uint64_t threshold = MetricsRegistry::Instance().slow_op_micros();
  bool slow = threshold != 0 && total_us >= threshold;
  // Head-based sampling decides span collection by hashing the trace id, so
  // every process keeps (or drops) the same traces; slow ops always land.
  if (slow || trace::Sampled(trace_id_)) {
    trace::SpanRecord record;
    record.trace_id = trace_id_;
    record.span_id = span_id_;
    record.parent_span_id = parent_span_id_;
    record.op = op_;
    record.msg_type = msg_type_;
    record.shard = shard_;
    record.start_us = start_wall_us_;
    record.duration_us = total_us;
    record.slow = slow;
    trace::RecordSpan(record);
  }
  if (!slow) return;
  static Counter& slow_ops = GetCounter("tc_server_slow_ops_total");
  slow_ops.Inc();
  std::string stages;
  for (size_t i = 0; i < num_stages_; ++i) {
    if (i > 0) stages += ',';
    stages += stages_[i].name;
    stages += ':';
    stages += std::to_string(stages_[i].us);
  }
  char trace[24];
  std::snprintf(trace, sizeof(trace), "%016" PRIx64, trace_id_);
  TC_LOG_WARN << "slow-op op=" << op_ << " trace=" << trace
              << " total_us=" << total_us << " stages=" << stages;
}

void TraceSpan::StageMark(const char* name, LatencyHistogram* hist) {
  if constexpr (!kEnabled) return;
  if (g_current_span != nullptr) g_current_span->Stage(name, hist);
}

}  // namespace tc::metrics
