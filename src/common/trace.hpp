// Cluster-wide distributed tracing and the structured event journal.
//
// Two per-process sinks, both bounded:
//
//  - SpanRing: a lock-free ring of completed TraceSpans (trace id, span id,
//    parent, op, message type, shard, wall start, duration). Writers are
//    the TraceSpan destructor on request threads; the reader is the
//    kTraceInfo handler snapshotting for `tccli trace`. Slots are per-field
//    relaxed atomics behind a per-slot version counter, so concurrent
//    record/snapshot is race-free by construction (a torn slot is detected
//    via the version and skipped, never blocked on). Overwrites of old
//    spans are counted in tc_trace_spans_dropped_total — overflow is
//    visible, not silent.
//
//  - EventJournal: a bounded deque of cluster lifecycle events (follower
//    hello/drop, view changes, elections, promotions, snapshot streams,
//    compactions, op-timeout storms) with a monotonically increasing seq,
//    queryable over kEventsInfo and optionally mirrored to a JSONL file
//    (`tcserver --event-log`). Events are rare, so a mutex is fine here;
//    drops are counted in tc_events_dropped_total.
//
// Head-based sampling: whether a trace is kept is a pure hash of its trace
// id against the configured percentage, so router, shard engines, and
// follower daemons agree on every trace without a wire flag — one sampled
// trace is sampled everywhere, or nowhere. Slow ops bypass sampling and are
// always retained.
//
// Under TC_METRICS=OFF every record path compiles to nothing (the spans are
// never constructed and RecordEvent is constexpr-gated), and tcserver
// rejects --trace-sample/--event-log outright.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace tc::trace {

/// Shard value for spans recorded outside any shard (router, follower net).
inline constexpr uint32_t kNoShard = 0xffffffffu;

/// One completed span, as drained by kTraceInfo. `op` points at a string
/// with static storage duration (message-type names and span literals).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  const char* op = "";
  uint8_t msg_type = 0;
  uint32_t shard = kNoShard;
  int64_t start_us = 0;  // wall clock, microseconds since the Unix epoch
  uint64_t duration_us = 0;
  bool slow = false;
};

/// Bounded lock-free ring of recent spans. Push is wait-free (one
/// fetch_add plus relaxed stores); Snapshot never blocks a writer.
class SpanRing {
 public:
  static constexpr size_t kCapacity = 4096;  // power of two

  void Push(const SpanRecord& r);

  /// Every readable slot, unordered (callers sort by start_us). A slot
  /// mid-write (odd version, or version changed under the read) is skipped.
  std::vector<SpanRecord> Snapshot() const;

  /// Spans evicted by ring wrap since process start.
  uint64_t dropped() const {
    uint64_t head = head_.load(std::memory_order_relaxed);
    return head > kCapacity ? head - kCapacity : 0;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> ver{0};  // odd = write in progress
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_span_id{0};
    std::atomic<const char*> op{nullptr};
    // packed: shard << 32 | msg_type << 8 | slow
    std::atomic<uint64_t> meta{0};
    std::atomic<int64_t> start_us{0};
    std::atomic<uint64_t> duration_us{0};
  };

  std::array<Slot, kCapacity> slots_{};
  std::atomic<uint64_t> head_{0};
};

/// The process-wide span ring (one per process: router and its in-process
/// shard engines share it, a follower daemon has its own).
SpanRing& Ring();

/// Record one completed span (TraceSpan's destructor path).
void RecordSpan(const SpanRecord& r);

/// Head-based sampling percentage in [0, 100]; default 100 (keep all).
void SetSamplePercent(uint32_t pct);
uint32_t SamplePercent();

/// Pure hash of the trace id against the sample percentage — every process
/// in the cluster answers the same for the same trace.
bool Sampled(uint64_t trace_id);

/// One journal entry. `kind` is a snake_case literal naming the event
/// class; `detail` is free-form context (endpoints, seqs, counts).
struct Event {
  uint64_t seq = 0;
  int64_t wall_ms = 0;  // wall clock, milliseconds since the Unix epoch
  std::string kind;
  uint32_t shard = 0;
  std::string detail;
};

/// Bounded in-memory journal of cluster lifecycle events, optionally
/// mirrored to a JSONL file. Thread-safe; events are rare enough that the
/// mutex never contends with the request path.
class EventJournal {
 public:
  static constexpr size_t kCapacity = 1024;

  static EventJournal& Instance();

  void Record(const char* kind, uint32_t shard, std::string detail)
      EXCLUDES(mu_);

  /// Events with seq >= min_seq, oldest first.
  std::vector<Event> Snapshot(uint64_t min_seq = 0) const EXCLUDES(mu_);

  /// Events evicted by the capacity bound since process start.
  uint64_t dropped() const EXCLUDES(mu_);

  /// Mirror every subsequent event as one JSON line appended to `path`.
  Status OpenLogFile(const std::string& path) EXCLUDES(mu_);
  void CloseLogFile() EXCLUDES(mu_);

 private:
  EventJournal() = default;

  mutable Mutex mu_;
  std::deque<Event> events_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::FILE* log_ GUARDED_BY(mu_) = nullptr;
};

/// Record one lifecycle event; compiles to nothing under TC_METRICS=OFF.
inline void RecordEvent(const char* kind, uint32_t shard,
                        std::string detail) {
  if constexpr (metrics::kEnabled) {
    EventJournal::Instance().Record(kind, shard, std::move(detail));
  } else {
    (void)kind;
    (void)shard;
    (void)detail;
  }
}

}  // namespace tc::trace
